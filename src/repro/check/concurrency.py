"""Pass 3 — concurrency static analysis (shared state across workers).

The engine dispatches layer campaigns to thread and process pools
(:mod:`repro.engine.campaign`), the sweep scheduler fans cells out
through the same machinery, and the telemetry registries are mutated
from every worker thread.  Each of those designs rests on a contract
that nothing in Python enforces; these checkers enforce them at review
time, over source text, with no execution:

``global-write-in-worker``
    A function that is submitted to *any* executor writes a
    module-level mutable global (``global X`` rebinding, or in-place
    mutation of a module-level dict/list/set).  Under threads that is a
    data race; under processes it is worse — the write lands in a
    copy and silently disagrees with the parent.  Exemption: functions
    installed as a ``ProcessPoolExecutor`` *initializer* — per-process
    module state set up before any task runs (the
    ``engine.parallel._WORKER_STATE`` idiom) is the sanctioned pattern.
``unlocked-registry-write``
    A class that owns a ``threading.Lock``/``RLock`` (assigned to a
    ``self`` attribute in ``__init__``) mutates another ``self``
    attribute outside a ``with self.<lock>:`` block in some other
    method.  The telemetry ``MetricsRegistry``/``Tracer`` follow a
    strict lock-everything discipline; this rule keeps every future
    method honest.  Only *direct* ``self.X`` writes are considered —
    ``self._local.stack = ...`` targets thread-local storage, which is
    private by construction.
``fork-unsafe-capture``
    A name bound to a fork-hostile resource — ``threading`` primitives,
    ``mmap.mmap``, an ``open()`` handle, a ``SharedMemory`` object — is
    passed as an argument to a ``ProcessPoolExecutor`` submission or in
    its ``initargs``.  Locks and mmaps do not survive pickling; handles
    that *appear* to pickle (via fd inheritance) alias kernel state
    between processes.  Pass names/descriptors and re-open in the
    worker (the ``SharedCaches`` pattern).
``unpicklable-task``
    A ``lambda`` or a locally-defined (nested) function submitted to a
    ``ProcessPoolExecutor``.  Both fail to pickle at dispatch time in
    production but are easy to miss under a thread-backend test run.
``lease-write-outside-helper``
    A filesystem mutation (create/rename/unlink/utime/truncating open)
    whose target names a lease file, outside
    :mod:`repro.cache.leases`.  The distributed-sweep claim protocol
    is exactly four atomic syscalls with exactly one implementation
    each (``docs/distributed.md``); an ad-hoc lease write elsewhere —
    a worker "helpfully" touching its lease, a cleanup pass unlinking
    one non-atomically — reintroduces the claim races the helpers
    exist to make impossible.

``fork-unsafe-capture``/``unpicklable-task``/``global-write-in-worker``
also cover ``multiprocessing.Process(target=..., args=...)`` and
``threading.Thread(target=...)`` construction — the distributed sweep's
worker fan-out path — not just executor submissions.

Suppression: ``# repro-check: ignore[rule-id]`` on the offending line,
same as the Pass-2 linter.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity

#: Constructor names that create a thread-backed executor.
_THREAD_POOLS = {"ThreadPoolExecutor"}
#: Constructor names that create a process-backed executor.
_PROCESS_POOLS = {"ProcessPoolExecutor"}

#: Callables whose result must never cross a process boundary.
_FORK_UNSAFE_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "mmap",
    "open",
    "SharedMemory",
}

#: The one module allowed to mutate lease files (path suffix).
_LEASE_HELPER_SUFFIX = "cache/leases.py"

#: Call names that mutate the filesystem at their path argument.
_FS_MUTATORS = {
    "unlink",
    "remove",
    "rename",
    "replace",
    "utime",
    "touch",
    "write_text",
    "write_bytes",
    "mkstemp",
}

#: ``os.open`` flag names that imply creation or writing.
_WRITE_OPEN_FLAGS = {
    "O_CREAT",
    "O_WRONLY",
    "O_RDWR",
    "O_APPEND",
    "O_TRUNC",
    "O_EXCL",
}

#: Methods that mutate a dict/list/set receiver in place.
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}


def _tail_name(node: ast.expr) -> Optional[str]:
    """Last attribute segment: ``cf.ProcessPoolExecutor`` -> that name."""
    while isinstance(node, ast.Attribute):
        if isinstance(node.value, (ast.Attribute, ast.Name)):
            return node.attr
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_ctor(node: ast.expr) -> Optional[str]:
    """If ``node`` is ``Ctor(...)`` (possibly dotted), the ctor name."""
    if isinstance(node, ast.Call):
        return _tail_name(node.func)
    return None


def _mentions_lease(nodes: Sequence[ast.AST]) -> bool:
    """Does any node reference a lease (name, attribute, or literal)?"""
    for node in nodes:
        if isinstance(node, ast.Name) and "lease" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "lease" in node.attr.lower():
            return True
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and "lease" in node.value.lower()
        ):
            return True
    return False


def _is_write_open(call: ast.Call) -> bool:
    """``open``/``os.open`` with a creating/writing mode or flags."""
    for node in ast.walk(call):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mode = node.value
            if (
                0 < len(mode) <= 3
                and set(mode) <= set("rwaxbt+")
                and set(mode) & set("wax+")
            ):
                return True
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name in _WRITE_OPEN_FLAGS:
            return True
    return False


def _module_mutable_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to a mutable container literal/ctor."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)
        ) or _call_ctor(value) in {"dict", "list", "set", "defaultdict",
                                   "OrderedDict", "deque"}
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class _FileFacts:
    """Everything one module contributes to the corpus-level pass."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.mutable_globals = _module_mutable_globals(tree)
        #: function name -> def node, every def at any nesting level
        self.functions: Dict[str, ast.AST] = {}
        #: names of functions defined *nested* inside another function
        self.nested_functions: Set[str] = set()
        #: (callable-name, executor-kind, call-node) per pool submission
        self.submissions: List[Tuple[Optional[str], str, ast.Call]] = []
        #: callable names installed as ProcessPoolExecutor initializers
        self.initializers: Set[str] = set()
        #: raw findings that need no cross-file context
        self.local_findings: List[Finding] = []
        self._collect()

    # ------------------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.local_findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
                reference="docs/performance.md",
            )
        )

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.setdefault(node.name, node)
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.nested_functions.add(inner.name)
        # Walk each top-level analysis scope (module + each top-level
        # function) tracking executor kinds and fork-unsafe bindings.
        # Nested defs share the enclosing function's table — closures
        # see the enclosing bindings, so the taint must too.
        self._scan_scope(self.tree.body, {}, set())
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_scope(node.body, {}, set())

    # ------------------------------------------------------------------
    def _scan_scope(
        self,
        body: Sequence[ast.stmt],
        pools: Dict[str, str],
        tainted: Set[str],
    ) -> None:
        """One lexical scope: track pool vars + fork-unsafe bindings."""
        for stmt in body:
            self._scan_stmt(stmt, pools, tainted)

    def _scan_stmt(
        self, stmt: ast.stmt, pools: Dict[str, str], tainted: Set[str]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._track_binding(stmt.targets, stmt.value, pools, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._track_binding([stmt.target], stmt.value, pools, tainted)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._track_binding(
                        [item.optional_vars], item.context_expr, pools,
                        tainted,
                    )
                else:
                    self._inspect_executor_ctor(item.context_expr)
        for call in self._calls_of(stmt):
            self._inspect_call(call, pools, tainted)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, pools, tainted)
            else:
                for sub in ast.walk(child):
                    if isinstance(sub, ast.stmt):
                        self._scan_stmt(sub, pools, tainted)

    @staticmethod
    def _calls_of(stmt: ast.stmt) -> List[ast.Call]:
        calls: List[ast.Call] = []
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    calls.append(sub)
        return calls

    # ------------------------------------------------------------------
    def _track_binding(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr,
        pools: Dict[str, str],
        tainted: Set[str],
    ) -> None:
        ctor = _call_ctor(value)
        kind: Optional[str] = None
        if ctor in _THREAD_POOLS:
            kind = "thread"
        elif ctor in _PROCESS_POOLS:
            kind = "process"
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if kind is not None:
                pools[target.id] = kind
            elif ctor in _FORK_UNSAFE_CTORS:
                tainted.add(target.id)
        if kind == "process" and isinstance(value, ast.Call):
            self._inspect_executor_ctor(value)
        elif isinstance(value, ast.Call) and _call_ctor(value) in (
            _THREAD_POOLS | _PROCESS_POOLS
        ):
            self._inspect_executor_ctor(value)

    def _inspect_executor_ctor(self, expr: ast.expr) -> None:
        """Record initializer= callables; check initargs= for taint."""
        if not isinstance(expr, ast.Call):
            return
        ctor = _call_ctor(expr)
        if ctor not in _PROCESS_POOLS:
            return
        for kw in expr.keywords:
            if kw.arg == "initializer":
                name = _tail_name(kw.value)
                if name is not None:
                    self.initializers.add(name)
                if isinstance(kw.value, ast.Lambda):
                    self._emit(
                        "unpicklable-task",
                        kw.value,
                        "lambda used as a ProcessPoolExecutor initializer; "
                        "lambdas cannot be pickled to worker processes",
                    )

    # ------------------------------------------------------------------
    def _inspect_call(
        self, call: ast.Call, pools: Dict[str, str], tainted: Set[str]
    ) -> None:
        func = call.func
        self._check_lease_write(call)
        self._inspect_worker_ctor(call, tainted)
        # pool.submit(fn, ...) / pool.map(fn, ...)
        if isinstance(func, ast.Attribute) and func.attr in (
            "submit", "map"
        ):
            receiver = func.value
            kind: Optional[str] = None
            if isinstance(receiver, ast.Name):
                kind = pools.get(receiver.id)
            if kind is None:
                rname = _tail_name(receiver) or ""
                if "pool" in rname.lower() or "executor" in rname.lower():
                    kind = "unknown"
            if kind is None:
                return
            task = call.args[0] if call.args else None
            task_name = _tail_name(task) if task is not None else None
            self.submissions.append((task_name, kind, call))
            if kind == "process":
                self._check_process_submission(call, task, tainted)
        # ProcessPoolExecutor(initargs=(lock, ...)) taint
        ctor = _call_ctor(call)
        if ctor in _PROCESS_POOLS:
            for kw in call.keywords:
                if kw.arg == "initargs":
                    self._check_taint_args(
                        list(ast.walk(kw.value)), call, tainted,
                        where="initargs",
                    )

    def _check_lease_write(self, call: ast.Call) -> None:
        """Flag lease-file mutations outside :mod:`repro.cache.leases`.

        A filesystem-mutating call (unlink/rename/utime/touch/creating
        open/...) whose receiver or arguments reference a lease is the
        claim protocol re-implemented ad hoc — only the helper module's
        four atomic operations are race-free by construction.
        """
        if self.path.replace("\\", "/").endswith(_LEASE_HELPER_SUFFIX):
            return
        name = _tail_name(call.func)
        if name is None:
            return
        mutates = name in _FS_MUTATORS or (
            name == "open" and _is_write_open(call)
        )
        if not mutates:
            return
        scope: List[ast.AST] = []
        if isinstance(call.func, ast.Attribute):
            scope.extend(ast.walk(call.func.value))
        for arg in call.args:
            scope.extend(ast.walk(arg))
        for kw in call.keywords:
            scope.extend(ast.walk(kw.value))
        if _mentions_lease(scope):
            self._emit(
                "lease-write-outside-helper",
                call,
                f"{name!r} mutates a lease file outside "
                "repro.cache.leases; the claim protocol "
                "(acquire/renew/steal/release) has exactly one atomic "
                "implementation each — use those helpers",
            )

    def _inspect_worker_ctor(
        self, call: ast.Call, tainted: Set[str]
    ) -> None:
        """``multiprocessing.Process``/``threading.Thread`` fan-out.

        The distributed sweep's workers are spawned this way, not via
        executor ``submit``; targets and args get the same discipline —
        ``target=`` is a submission for ``global-write-in-worker``, and
        for processes a lambda/nested target cannot pickle and
        lock/mmap/file ``args=`` do not survive the fork boundary.
        """
        ctor = _call_ctor(call)
        if ctor not in ("Process", "Thread"):
            return
        kind = "process" if ctor == "Process" else "thread"
        target: Optional[ast.expr] = None
        payloads: List[ast.AST] = []
        for kw in call.keywords:
            if kw.arg == "target":
                target = kw.value
            elif kw.arg in ("args", "kwargs", "initargs"):
                payloads.extend(ast.walk(kw.value))
        if target is None:
            return
        self.submissions.append((_tail_name(target), kind, call))
        if kind != "process":
            return
        if isinstance(target, ast.Lambda):
            self._emit(
                "unpicklable-task",
                call,
                "lambda used as a multiprocessing.Process target; "
                "lambdas cannot be pickled to worker processes",
            )
        elif (
            isinstance(target, ast.Name)
            and target.id in self.nested_functions
        ):
            self._emit(
                "unpicklable-task",
                call,
                f"locally-defined function {target.id!r} used as a "
                "multiprocessing.Process target; nested functions "
                "cannot be pickled — hoist it to module level",
            )
        self._check_taint_args(
            payloads, call, tainted, where="Process args"
        )

    def _check_process_submission(
        self,
        call: ast.Call,
        task: Optional[ast.expr],
        tainted: Set[str],
    ) -> None:
        if isinstance(task, ast.Lambda):
            self._emit(
                "unpicklable-task",
                call,
                "lambda submitted to a process pool; lambdas cannot be "
                "pickled — use a module-level function",
            )
        elif (
            isinstance(task, ast.Name)
            and task.id in self.nested_functions
        ):
            self._emit(
                "unpicklable-task",
                call,
                f"locally-defined function {task.id!r} submitted to a "
                "process pool; nested functions cannot be pickled — "
                "hoist it to module level",
            )
        arg_nodes: List[ast.AST] = []
        for arg in call.args[1:]:
            arg_nodes.extend(ast.walk(arg))
        for kw in call.keywords:
            arg_nodes.extend(ast.walk(kw.value))
        self._check_taint_args(arg_nodes, call, tainted, where="submission")

    def _check_taint_args(
        self,
        nodes: Sequence[ast.AST],
        call: ast.Call,
        tainted: Set[str],
        where: str,
    ) -> None:
        for node in nodes:
            if isinstance(node, ast.Name) and node.id in tainted:
                self._emit(
                    "fork-unsafe-capture",
                    call,
                    f"{node.id!r} holds a lock/mmap/file/shared-memory "
                    f"object and is captured into a process-pool {where}; "
                    "these do not survive pickling — pass a "
                    "name/descriptor and re-open in the worker",
                )


# ----------------------------------------------------------------------
# global-write-in-worker (corpus-level: submissions may name functions
# defined in another module)
# ----------------------------------------------------------------------


def _global_writes(
    fn: ast.AST, mutable_globals: Set[str]
) -> List[Tuple[ast.AST, str]]:
    """(node, name) for each write this function makes to module state."""
    declared: Set[str] = set()
    writes: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    writes.append((node, target.id))
                elif isinstance(target, ast.Subscript):
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in (mutable_globals | declared)
                    ):
                        writes.append((node, base.id))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in (mutable_globals | declared)
            ):
                writes.append((node, func.value.id))
    return writes


def _check_worker_global_writes(facts: List[_FileFacts]) -> List[Finding]:
    submitted: Set[str] = set()
    initializers: Set[str] = set()
    for f in facts:
        initializers.update(f.initializers)
        for task_name, _kind, _call in f.submissions:
            if task_name is not None:
                submitted.add(task_name)
    findings: List[Finding] = []
    for f in facts:
        for name, fn in f.functions.items():
            if name not in submitted or name in initializers:
                continue
            for node, global_name in _global_writes(fn, f.mutable_globals):
                findings.append(
                    Finding(
                        rule="global-write-in-worker",
                        severity=Severity.ERROR,
                        message=(
                            f"function {name!r} is submitted to an "
                            f"executor but writes module-level state "
                            f"{global_name!r}; shared writes race under "
                            "threads and silently diverge under "
                            "processes — return results instead, or "
                            "register the function as a process-pool "
                            "initializer"
                        ),
                        path=f.path,
                        line=getattr(node, "lineno", None),
                        reference="docs/performance.md",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# unlocked-registry-write
# ----------------------------------------------------------------------


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """``self.X`` attrs bound to threading locks in ``__init__``."""
    locks: Set[str] = set()
    for node in cls.body:
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == "__init__"
        ):
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign):
                    continue
                if _call_ctor(stmt.value) not in ("Lock", "RLock"):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
    return locks


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` (direct, not nested) -> ``X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _LockScopeVisitor(ast.NodeVisitor):
    """Find direct self-attribute writes outside ``with self.<lock>:``."""

    def __init__(self, locks: Set[str]) -> None:
        self.locks = locks
        self.depth = 0
        self.writes: List[Tuple[ast.AST, str]] = []

    def _is_lock_ctx(self, expr: ast.expr) -> bool:
        attr = _self_attr(expr)
        return attr is not None and attr in self.locks

    def visit_With(self, node: ast.With) -> None:
        held = any(self._is_lock_ctx(i.context_expr) for i in node.items)
        if held:
            self.depth += 1
        self.generic_visit(node)
        if held:
            self.depth -= 1

    def _record(self, node: ast.AST, attr: str) -> None:
        if self.depth == 0 and attr not in self.locks:
            self.writes.append((node, attr))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                self._record(node, attr)
            elif isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr is not None:
                    self._record(node, attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is None and isinstance(node.target, ast.Subscript):
            attr = _self_attr(node.target.value)
        if attr is not None:
            self._record(node, attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
        ):
            attr = _self_attr(func.value)
            if attr is not None:
                self._record(node, attr)
        self.generic_visit(node)

    # Nested defs get their own lock discipline; don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _check_registry_locks(facts: List[_FileFacts]) -> List[Finding]:
    findings: List[Finding] = []
    for f in facts:
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = _lock_attrs(node)
            if not locks:
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name == "__init__":
                    continue
                visitor = _LockScopeVisitor(locks)
                for stmt in method.body:
                    visitor.visit(stmt)
                for write, attr in visitor.writes:
                    findings.append(
                        Finding(
                            rule="unlocked-registry-write",
                            severity=Severity.ERROR,
                            message=(
                                f"{node.name}.{method.name} writes "
                                f"self.{attr} outside `with "
                                f"self.{sorted(locks)[0]}:`; this class "
                                "owns a lock, so every shared-attribute "
                                "mutation must hold it"
                            ),
                            path=f.path,
                            line=getattr(write, "lineno", None),
                            reference="docs/performance.md",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def analyze_concurrency(
    files: Sequence[Tuple[str, str]]
) -> List[Finding]:
    """Run every concurrency rule over a corpus of (path, source).

    The pass is corpus-level on purpose: a function submitted to a pool
    in one module is usually *defined* in another, so submissions and
    definitions are matched by name across the whole file set.
    Per-line ``# repro-check: ignore[...]`` suppressions are applied by
    the caller (:func:`repro.check.registry.run_analyzers`).
    """
    facts: List[_FileFacts] = []
    findings: List[Finding] = []
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    severity=Severity.ERROR,
                    message=str(exc.msg),
                    path=path,
                    line=exc.lineno,
                )
            )
            continue
        facts.append(_FileFacts(path, tree))
    for f in facts:
        findings.extend(f.local_findings)
    findings.extend(_check_worker_global_writes(facts))
    findings.extend(_check_registry_locks(facts))
    return findings


__all__ = ["analyze_concurrency"]
