"""Static analysis for the precision-optimization pipeline.

Two passes, no data execution required:

* **Pass 1 — graph & allocation verifier**
  (:mod:`~repro.check.graph_verifier`, :mod:`~repro.check.intervals`,
  :mod:`~repro.check.allocation_audit`): structural DAG checks, shape
  re-inference, dtype audit, interval-arithmetic range propagation, and
  the bitwidth-allocation audits (overflow, negative-F feasibility, xi
  invariants, Eq. 5 fit gates).
* **Pass 2 — numerical linter** (:mod:`~repro.check.linter`): AST
  checkers for unseeded randomness, exact float comparison, dtype
  literals off the substrate, in-place cache mutation, and overbroad
  exception handlers.

Run ``python -m repro.check --help`` (or ``repro check --help``) for
the CLI; see ``docs/static-analysis.md`` for every rule, the paper
precondition it protects, and how to suppress a finding.
"""

from .allocation_audit import (
    LAMBDA_FLOOR,
    XI_SUM_TOLERANCE,
    audit_allocation,
    audit_allocation_result,
    audit_profiles,
    audit_xi,
)
from .findings import CheckReport, Finding, Severity
from .graph_verifier import (
    LayerDecl,
    decls_of,
    verify_dtypes,
    verify_graph_decls,
    verify_network,
    verify_shapes,
)
from .intervals import (
    Interval,
    RangeAnalysis,
    input_range_of,
    propagate_ranges,
)
from .concurrency import analyze_concurrency
from .determinism import analyze_determinism
from .linter import lint_paths, lint_source
from .registry import (
    ANALYZERS,
    apply_baseline,
    baseline_digests,
    load_baseline,
    run_analyzers,
    write_baseline,
)

__all__ = [
    "ANALYZERS",
    "LAMBDA_FLOOR",
    "XI_SUM_TOLERANCE",
    "CheckReport",
    "Finding",
    "Interval",
    "LayerDecl",
    "RangeAnalysis",
    "Severity",
    "analyze_concurrency",
    "analyze_determinism",
    "apply_baseline",
    "audit_allocation",
    "baseline_digests",
    "audit_allocation_result",
    "audit_profiles",
    "audit_xi",
    "decls_of",
    "input_range_of",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "propagate_ranges",
    "run_analyzers",
    "verify_dtypes",
    "verify_graph_decls",
    "verify_network",
    "verify_shapes",
    "write_baseline",
]
