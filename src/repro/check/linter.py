"""Pass 2 — AST-based numerical lint for this codebase's footguns.

Five checkers, each targeting a bug class that has a concrete failure
mode on the pure-numpy substrate:

``unseeded-random``
    Use of the legacy ``np.random.*`` global API, or
    ``np.random.default_rng()`` without a seed.  Every measurement in
    the pipeline (profiles, sigma searches, accuracy trials) must be
    reproducible from ``config.DEFAULT_SEED``; one unseeded draw makes
    Table II/III rows unrepeatable.
``float-equality``
    ``==`` / ``!=`` against a float literal.  Exact float comparison
    guards degenerate cases (zero std, zero sigma) that near-misses
    slip past — e.g. a denormal activation is not ``== 0.0`` but
    carries no usable precision.
``dtype-mismatch``
    A hardcoded float dtype literal that disagrees with the substrate
    dtype (``repro.config.DTYPE``).  A stray ``float32`` array silently
    demotes one layer's arithmetic below the injected-delta resolution.
``cache-mutation``
    In-place mutation of values held by an ``ActivationCache`` (name
    heuristic: receivers named ``cache`` / ``*_cache``).  Cached clean
    activations are shared by every partial replay; mutating one
    corrupts all later sigma measurements for the batch.
``overbroad-except``
    A bare ``except:`` or ``except Exception:`` handler that never
    re-raises.  Such handlers swallow the structured ``Diagnostic``
    errors of the resilience layer, turning strict-mode failures into
    silent garbage.

Suppression: append ``# repro-check: ignore`` (all rules) or
``# repro-check: ignore[rule-id]`` to the offending line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..config import DTYPE
from .findings import CheckReport, Finding, Severity

#: Legacy numpy global-RNG functions (always unseeded process state).
_LEGACY_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "uniform", "normal", "standard_normal", "choice",
    "shuffle", "permutation", "poisson", "binomial", "beta", "gamma",
    "exponential", "laplace", "lognormal", "seed", "get_state",
    "set_state",
}

_FLOAT_DTYPES = {"float16", "float32", "float64", "float128"}

#: ndarray methods that mutate in place (no copy).
_MUTATING_METHODS = {
    "fill", "sort", "partition", "put", "setfield", "resize", "itemset",
}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-check:\s*ignore(?:\[([a-z0-9_,\s-]+)\])?"
)

_CACHE_NAME_RE = re.compile(r"(^|_)cache$")


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppression map: line -> None (all rules) or rule set."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = match.group(1)
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return table


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the numpy package (np, numpy, ...)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _attr_chain(node: ast.expr) -> List[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _is_cache_receiver(node: ast.expr) -> bool:
    """Heuristic: expression names an ActivationCache-like object."""
    if isinstance(node, ast.Name):
        return bool(_CACHE_NAME_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_CACHE_NAME_RE.search(node.attr))
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, numpy_aliases: Set[str]):
        self.path = path
        self.numpy_aliases = numpy_aliases
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------
    def _emit(
        self, rule: str, node: ast.AST, message: str, reference: str = ""
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
                reference=reference,
            )
        )

    # ------------------------------------------------------------------
    # unseeded-random
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) == 3 and chain[0] in self.numpy_aliases:
            _, module, fn = chain
            if module == "random" and fn in _LEGACY_RANDOM:
                self._emit(
                    "unseeded-random",
                    node,
                    f"legacy global-RNG call np.random.{fn}(); use a "
                    "seeded np.random.default_rng(seed) Generator",
                )
            elif module == "random" and fn in ("default_rng", "RandomState"):
                seeded = bool(node.args) and not (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                seeded = seeded or any(
                    kw.arg == "seed" and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is None
                    )
                    for kw in node.keywords
                )
                if not seeded:
                    self._emit(
                        "unseeded-random",
                        node,
                        f"np.random.{fn}() constructed without a seed; "
                        "results are unrepeatable across runs",
                    )
        self._check_dtype_args(node)
        self._check_cache_method(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # float-equality
    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    self._emit(
                        "float-equality",
                        node,
                        f"exact comparison against float literal "
                        f"{operand.value!r}; use np.isclose / an explicit "
                        "tolerance",
                    )
                    break
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # dtype-mismatch
    # ------------------------------------------------------------------
    def _check_dtype_value(self, value: ast.expr) -> None:
        dtype_name: Optional[str] = None
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            if value.value in _FLOAT_DTYPES:
                dtype_name = value.value
        else:
            chain = _attr_chain(value)
            if (
                len(chain) == 2
                and chain[0] in self.numpy_aliases
                and chain[1] in _FLOAT_DTYPES
            ):
                dtype_name = chain[1]
        if dtype_name is not None and dtype_name != DTYPE:
            self._emit(
                "dtype-mismatch",
                value,
                f"hardcoded dtype {dtype_name!r} disagrees with the "
                f"activation substrate dtype {DTYPE!r} "
                "(repro.config.DTYPE); mixed-precision paths skew the "
                "profiled error model",
                reference="Eq. 5",
            )

    def _check_dtype_args(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "dtype":
                self._check_dtype_value(kw.value)
        # x.astype("float32") / x.astype(np.float32)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            self._check_dtype_value(node.args[0])

    # ------------------------------------------------------------------
    # cache-mutation
    # ------------------------------------------------------------------
    def _is_cache_item(self, node: ast.expr) -> bool:
        """True for ``cache[...]`` (possibly through nested subscripts)."""
        while isinstance(node, ast.Subscript):
            if _is_cache_receiver(node.value):
                return True
            node = node.value
        return False

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript) and self._is_cache_item(
            node.target
        ):
            self._emit(
                "cache-mutation",
                node,
                "in-place update of a cached activation; clean cache "
                "values are shared by every partial replay — copy first",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            # cache[k][...] = v mutates the cached array; cache[k] = v
            # (rebinding the slot) is the dict-building idiom and fine.
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Subscript)
                and self._is_cache_item(target.value)
            ):
                self._emit(
                    "cache-mutation",
                    node,
                    "element store into a cached activation; clean cache "
                    "values are shared by every partial replay — copy first",
                )
        self.generic_visit(node)

    def _check_cache_method(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Subscript)
            and self._is_cache_item(func.value)
        ):
            self._emit(
                "cache-mutation",
                node,
                f"mutating method .{func.attr}() on a cached activation",
            )

    # ------------------------------------------------------------------
    # overbroad-except
    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = False
        what = ""
        if node.type is None:
            broad = True
            what = "bare except:"
        else:
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            names = {
                t.id for t in types if isinstance(t, ast.Name)
            }
            if names & {"Exception", "BaseException"}:
                broad = True
                what = f"except {' | '.join(sorted(names))}"
        if broad:
            reraises = any(
                isinstance(n, ast.Raise) for n in ast.walk(node)
            )
            if not reraises:
                self._emit(
                    "overbroad-except",
                    node,
                    f"{what} swallows everything (including resilience "
                    "Diagnostic errors) without re-raising; catch "
                    "ReproError subclasses or re-raise",
                )
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>"
) -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                severity=Severity.ERROR,
                message=str(exc.msg),
                path=path,
                line=exc.lineno,
            )
        ]
    visitor = _Visitor(path, _numpy_aliases(tree))
    visitor.visit(tree)
    table = _suppressions(source)
    kept: List[Finding] = []
    for finding in visitor.findings:
        if finding.line in table:
            rules = table[finding.line]
            if rules is None or finding.rule in rules:
                continue
        kept.append(finding)
    return kept


def iter_python_files(
    paths: Iterable[Union[str, Path]]
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: Sequence[Union[str, Path]]
) -> Tuple[CheckReport, int]:
    """Lint every ``.py`` file under ``paths``.

    Returns the report and the number of files examined.  Findings are
    deduplicated by their stable ``file:line:rule`` digest: overlapping
    input paths (a directory plus a file inside it, or the same file
    via relative and absolute spellings) and same-line repeats of one
    rule collapse to a single finding, so baseline digests cannot be
    inflated by how the paths were spelled.
    """
    report = CheckReport()
    files = iter_python_files(paths)
    seen: Set[str] = set()
    for file in files:
        source = file.read_text(encoding="utf-8")
        for finding in lint_source(source, str(file)):
            digest = finding.digest()
            if digest in seen:
                continue
            seen.add(digest)
            report.findings.append(finding)
    return report, len(files)
