"""``python -m repro.check`` entry point."""

import sys

from .cli import main

sys.exit(main())
