"""Analyzer registry: named passes, shared suppression, baselines.

One dispatch table maps pass names to corpus-level analyzer functions
(``(path, source)`` pairs in, :class:`~repro.check.findings.Finding`
list out).  :func:`run_analyzers` is the single entry point the CLI,
the Makefile gate, and the tests all share; it applies the common
``# repro-check: ignore[...]`` per-line suppressions, deduplicates
findings by their stable :meth:`~repro.check.findings.Finding.digest`
(so overlapping input paths or repeated corpus passes cannot inflate
the report), and sorts deterministically.

Baselines: a committed JSON file of finding digests
(``check-baseline.json`` at the repository root) pins the accepted
state.  ``--baseline`` filters known findings out (the gate then fails
only on *new* ones) and fails on digests that no longer occur
(stale-baseline hygiene, surfaced as a warning finding);
``--write-baseline`` regenerates the file.  Digests hash
``file:line:rule`` relative to the repo root, so the file is stable
across checkouts and message rewording.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .concurrency import analyze_concurrency
from .determinism import analyze_determinism
from .findings import CheckReport, Finding, Severity
from .linter import _suppressions, iter_python_files, lint_source

#: Corpus analyzer: list of (path, source) -> findings.
AnalyzerFn = Callable[[Sequence[Tuple[str, str]]], List[Finding]]


def _lint_corpus(files: Sequence[Tuple[str, str]]) -> List[Finding]:
    findings: List[Finding] = []
    for path, source in files:
        findings.extend(lint_source(source, path))
    return findings


#: Every named static-analysis pass, in canonical execution order.
ANALYZERS: Dict[str, AnalyzerFn] = {
    "lint": _lint_corpus,
    "concurrency": analyze_concurrency,
    "determinism": analyze_determinism,
}


def _dedupe(
    findings: Sequence[Finding], root: Optional[Path]
) -> List[Finding]:
    seen: Dict[str, Finding] = {}
    for finding in findings:
        seen.setdefault(finding.digest(root), finding)
    return sorted(
        seen.values(),
        key=lambda f: (f.path or "", f.line or 0, f.rule, f.message),
    )


def run_analyzers(
    paths: Sequence[Union[str, Path]],
    names: Sequence[str] = ("lint",),
    root: Optional[Path] = None,
) -> Tuple[CheckReport, int]:
    """Run the named passes over every ``.py`` file under ``paths``.

    Returns ``(report, files_examined)``.  Findings are suppressed per
    line, deduplicated by digest, and deterministically ordered.
    Unknown pass names raise ``KeyError`` (an analyzer *crash*, exit
    code 2 at the CLI — not a finding).
    """
    analyzers = [(name, ANALYZERS[name]) for name in names]
    files = iter_python_files(paths)
    corpus: List[Tuple[str, str]] = []
    suppress: Dict[str, Dict[int, Optional[set]]] = {}
    for file in files:
        source = file.read_text(encoding="utf-8")
        corpus.append((str(file), source))
        suppress[str(file)] = _suppressions(source)
    findings: List[Finding] = []
    for _name, analyzer in analyzers:
        findings.extend(analyzer(corpus))
    kept: List[Finding] = []
    for finding in findings:
        table = suppress.get(finding.path or "", {})
        if finding.line in table:
            rules = table[finding.line]
            if rules is None or finding.rule in rules:
                continue
        kept.append(finding)
    report = CheckReport()
    report.findings.extend(_dedupe(kept, root))
    return report, len(files)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------

BASELINE_VERSION = 1


def baseline_digests(
    report: CheckReport, root: Optional[Path] = None
) -> List[str]:
    """Sorted unique digests of a report's WARNING+ findings."""
    return sorted(
        {
            f.digest(root)
            for f in report.at_least(Severity.WARNING)
        }
    )


def write_baseline(
    path: Union[str, Path],
    report: CheckReport,
    root: Optional[Path] = None,
) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "digests": baseline_digests(report, root),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: Union[str, Path]) -> List[str]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "digests" not in payload:
        raise ValueError(f"{path}: not a check baseline file")
    digests = payload["digests"]
    if not isinstance(digests, list) or not all(
        isinstance(d, str) for d in digests
    ):
        raise ValueError(f"{path}: malformed digest list")
    return list(digests)


def apply_baseline(
    report: CheckReport,
    digests: Sequence[str],
    root: Optional[Path] = None,
) -> CheckReport:
    """Filter baselined findings out; flag digests that went stale.

    Returns a new report containing (a) every finding whose digest is
    *not* in the baseline, and (b) one ``stale-baseline`` WARNING per
    baseline digest that no current finding produces — prune those so
    the accepted-debt list only ever shrinks.
    """
    known = set(digests)
    current = {f.digest(root) for f in report}
    filtered = CheckReport()
    filtered.findings.extend(
        f for f in report if f.digest(root) not in known
    )
    for digest in sorted(known - current):
        filtered.add(
            "stale-baseline",
            Severity.WARNING,
            f"baseline digest {digest} matches no current finding; "
            "remove it (or re-run with --write-baseline)",
        )
    return filtered


__all__ = [
    "ANALYZERS",
    "AnalyzerFn",
    "apply_baseline",
    "baseline_digests",
    "load_baseline",
    "run_analyzers",
    "write_baseline",
]
