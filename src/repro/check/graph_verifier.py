"""Pass 1a — structural, shape, and dtype verification of network DAGs.

Everything here is *static*: no data flows through the network.  Two
entry points:

* :func:`verify_graph_decls` checks a raw ``(name, inputs)`` edge list
  — the form a graph takes *before* :class:`~repro.nn.graph.Network`
  construction, where cycles and dangling producers can still exist.
  :meth:`Network.add` rejects these eagerly at build time; this pass
  exists so declarative sources (specs, serialized graphs, generated
  architectures) can be validated without attempting a build.
* :func:`verify_network` checks a built :class:`Network`: structural
  invariants, shape re-inference (every layer's recorded output shape
  must still follow from its producers' shapes — catches stale bindings
  after weight surgery), and dtype audit (parameter arrays that drifted
  off the float64 substrate would silently promote or truncate
  activations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..config import DTYPE
from ..errors import ReproError
from ..nn.graph import INPUT, Network
from .findings import CheckReport, Severity


@dataclass(frozen=True)
class LayerDecl:
    """A declared layer: just wiring, no parameters.

    The minimal projection of a layer a structural pass needs.  Built
    from a :class:`Network` via :func:`decls_of`, or by hand for graphs
    that cannot (yet) be built.
    """

    name: str
    inputs: Tuple[str, ...]


def decls_of(network: Network) -> List[LayerDecl]:
    """Project a built network onto its declaration list."""
    return [
        LayerDecl(name=layer.name, inputs=tuple(layer.inputs))
        for layer in network.layers
    ]


# ----------------------------------------------------------------------
# Structural pass (works on declarations, so it can reject bad graphs)
# ----------------------------------------------------------------------
def verify_graph_decls(
    decls: Sequence[LayerDecl],
    output: str = "",
) -> CheckReport:
    """Structural audit: names, dangling producers, cycles, reachability.

    ``output`` defaults to the last declared layer (the same convention
    :class:`Network` uses).
    """
    report = CheckReport()
    if not decls:
        report.add(
            "empty-graph", Severity.ERROR, "graph declares no layers"
        )
        return report
    names: Set[str] = set()
    for decl in decls:
        if decl.name == INPUT:
            report.add(
                "reserved-name",
                Severity.ERROR,
                f"layer name {INPUT!r} is reserved for the network input",
                layer=decl.name,
            )
        elif decl.name in names:
            report.add(
                "duplicate-layer",
                Severity.ERROR,
                f"layer {decl.name!r} is declared more than once",
                layer=decl.name,
            )
        names.add(decl.name)
        if not decl.inputs:
            report.add(
                "no-inputs",
                Severity.ERROR,
                f"layer {decl.name!r} declares no inputs",
                layer=decl.name,
            )
        if decl.name in decl.inputs:
            report.add(
                "self-loop",
                Severity.ERROR,
                f"layer {decl.name!r} consumes its own output",
                layer=decl.name,
            )

    declared = names | {INPUT}
    for decl in decls:
        for producer in decl.inputs:
            if producer not in declared:
                report.add(
                    "dangling-producer",
                    Severity.ERROR,
                    f"layer {decl.name!r} consumes unknown producer "
                    f"{producer!r}",
                    layer=decl.name,
                )

    # Cycle detection via Kahn's algorithm over declared edges only.
    in_degree: Dict[str, int] = {}
    consumers: Dict[str, List[str]] = {}
    for decl in decls:
        known_inputs = [p for p in decl.inputs if p in declared]
        in_degree[decl.name] = len(known_inputs)
        for producer in known_inputs:
            consumers.setdefault(producer, []).append(decl.name)
    queue = [INPUT]
    visited: Set[str] = set()
    while queue:
        node = queue.pop()
        visited.add(node)
        for consumer in consumers.get(node, ()):
            in_degree[consumer] -= 1
            if in_degree[consumer] == 0:
                queue.append(consumer)
    cyclic = sorted(
        name for name, degree in in_degree.items()
        if degree > 0 and name not in visited
    )
    if cyclic:
        report.add(
            "cycle",
            Severity.ERROR,
            "graph contains a cycle (or layers fed only by a cycle): "
            + ", ".join(repr(n) for n in cyclic),
        )

    out = output or decls[-1].name
    if out not in names:
        report.add(
            "unknown-output",
            Severity.ERROR,
            f"declared output {out!r} is not a layer",
        )
    elif out in visited or not cyclic:
        # Reachability from the input: walk producers backwards.
        by_name = {d.name: d for d in decls}
        frontier = [out]
        seen: Set[str] = set()
        reaches_input = False
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            if node == INPUT:
                reaches_input = True
                continue
            decl = by_name.get(node)
            if decl is not None:
                frontier.extend(decl.inputs)
        if not reaches_input:
            report.add(
                "unreachable-output",
                Severity.ERROR,
                f"output {out!r} is not reachable from the network input",
                layer=out,
            )
        dead = sorted(names - seen)
        if dead:
            report.add(
                "dead-layers",
                Severity.INFO,
                f"{len(dead)} layer(s) do not feed the output: "
                + ", ".join(repr(n) for n in dead[:8])
                + ("..." if len(dead) > 8 else ""),
            )
    return report


# ----------------------------------------------------------------------
# Shape and dtype passes (need a built network, still no data)
# ----------------------------------------------------------------------
def verify_shapes(network: Network) -> CheckReport:
    """Re-run shape inference and compare with the bound shapes.

    :meth:`Network.add` binds shapes once; nothing re-checks them if a
    layer's parameters are later replaced (weight surgery, calibration
    bugs).  Re-inferring from the producers' *current* recorded shapes
    catches exactly that drift, without a forward pass.
    """
    report = CheckReport()
    shapes: Dict[str, Tuple[int, ...]] = {INPUT: tuple(network.input_shape)}
    for layer in network.layers:
        producer_shapes = []
        for producer in layer.inputs:
            if producer not in shapes:
                report.add(
                    "dangling-producer",
                    Severity.ERROR,
                    f"layer {layer.name!r} consumes {producer!r}, which is "
                    "not produced upstream of it",
                    layer=layer.name,
                )
                break
            producer_shapes.append(shapes[producer])
        else:
            try:
                inferred = tuple(layer.infer_shape(producer_shapes))
            except ReproError as exc:
                report.add(
                    "shape-mismatch",
                    Severity.ERROR,
                    f"shape inference failed: {exc}",
                    layer=layer.name,
                )
                shapes[layer.name] = tuple(layer.output_shape or ())
                continue
            bound = tuple(layer.output_shape or ())
            if bound != inferred:
                report.add(
                    "stale-shape",
                    Severity.ERROR,
                    f"bound output shape {bound} no longer follows from the "
                    f"producers (re-inference gives {inferred}); the layer "
                    "was mutated after being added to the network",
                    layer=layer.name,
                )
            shapes[layer.name] = inferred
            continue
        # Broken producer chain: trust the bound shape to keep going.
        shapes.setdefault(layer.name, tuple(layer.output_shape or ()))
    return report


#: Parameter-array attributes audited by the dtype pass.
_PARAM_ATTRS = ("weight", "bias", "scale", "shift")


def verify_dtypes(network: Network) -> CheckReport:
    """Audit parameter dtypes against the float64 activation substrate.

    The engine computes in ``config.DTYPE`` (float64: injected deltas go
    down to 2**-20, far below float32 resolution at activation scale
    ~400).  A parameter array in any other float dtype silently
    *promotes* (float32 -> float64: precision the profile never had) or
    *demotes* (float128 etc.) the layer's arithmetic relative to every
    other layer, skewing the per-layer error model of Eq. 5.
    """
    report = CheckReport()
    expected = np.dtype(DTYPE)
    for layer in network.layers:
        for attr in _PARAM_ATTRS:
            value = getattr(layer, attr, None)
            if not isinstance(value, np.ndarray):
                continue
            if value.dtype != expected:
                report.add(
                    "dtype-promotion",
                    Severity.ERROR,
                    f"parameter {attr!r} has dtype {value.dtype}, but the "
                    f"activation substrate is {expected}; mixed dtypes "
                    "promote/demote this layer's arithmetic relative to "
                    "the profiled error model",
                    layer=layer.name,
                    reference="Eq. 5",
                )
            if not np.isfinite(value).all():
                report.add(
                    "non-finite-parameter",
                    Severity.ERROR,
                    f"parameter {attr!r} contains NaN/Inf entries",
                    layer=layer.name,
                )
    return report


def verify_network(network: Network) -> CheckReport:
    """Full Pass-1a audit of a built network: structure, shapes, dtypes."""
    report = verify_graph_decls(decls_of(network), output=network.output_name)
    report.extend(verify_shapes(network))
    report.extend(verify_dtypes(network))
    return report
