"""Pass 1c — static audit of a bitwidth allocation against the model.

Each check here protects one precondition of the paper's pipeline:

* **Integer-bit overflow** (Sec. II-A, Table II): an allocation whose
  ``I`` does not cover the layer's activation range saturates at
  inference — silently, because :meth:`FixedPointFormat.quantize`
  clamps.  Checked against the measured ``max|X_K|`` (error) and,
  when an input bound is available, against the statically propagated
  interval (warning: interval bounds are conservative).
* **Negative-F feasibility** (Sec. II-A): dropping low-order integer
  bits (``F < 0``) requires the dropped bits to exist — the implicit
  shift cannot consume the sign bit or push the word below the minimum
  width.
* **xi-share invariants** (Eq. 6/8): the error shares must satisfy
  ``sum_K xi_K = 1`` and respect the solver's floor; a violated sum
  means sigma_YL is mis-budgeted and the accuracy constraint no longer
  bounds the true output error.
* **Eq. 5 fit quality**: a near-zero ``lambda_K`` makes
  ``Delta = lambda * sigma * sqrt(xi) + theta`` insensitive to xi (the
  Eq. 8 objective is flat in that coordinate); a negative R^2 means the
  fitted line predicts worse than the mean — both poison the allocator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - avoids importing scipy at load
    from ..optimize.allocator import AllocationResult

from ..analysis.profiler import LayerErrorProfile
from ..config import MAX_BITWIDTH, MIN_BITWIDTH
from ..nn.graph import Network
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation
from ..quant.fixed_point import integer_bits_for_range
from ..resilience.guards import R_SQUARED_FLOOR
from .findings import CheckReport, Severity
from .intervals import Interval, propagate_ranges

#: |lambda| at or below this is treated as a degenerate Eq. 5 fit: the
#: line predicts essentially the same Delta for any sigma share, so the
#: Eq. 8 objective cannot trade error between layers.
LAMBDA_FLOOR = 1e-9

#: Tolerance on |sum_K xi_K - 1| (SLSQP enforces the constraint to
#: roughly sqrt(eps); anything beyond this is a real violation).
XI_SUM_TOLERANCE = 1e-6

#: Must match repro.optimize.sqp.XI_FLOOR (imported lazily below to
#: keep this module importable without scipy).
_DEFAULT_XI_FLOOR = 1e-6


def audit_allocation(
    allocation: BitwidthAllocation,
    stats: Optional[Mapping[str, LayerStats]] = None,
    network: Optional[Network] = None,
    input_range: Optional[Interval] = None,
) -> CheckReport:
    """Audit the fixed-point formats of an allocation, statically.

    ``stats`` enables the measured-range overflow check; ``network`` +
    ``input_range`` additionally enable the interval-propagated bound.
    """
    report = CheckReport()
    if network is not None:
        analyzed = set(network.analyzed_layer_names)
        for name in allocation.names:
            if name not in network:
                report.add(
                    "unknown-layer",
                    Severity.ERROR,
                    f"allocation targets layer {name!r}, absent from "
                    f"network {network.name!r}",
                    layer=name,
                )
            elif name not in analyzed:
                report.add(
                    "not-analyzed",
                    Severity.ERROR,
                    f"allocation targets {name!r}, which is not an analyzed "
                    "(dot-product) layer",
                    layer=name,
                )
        missing = [n for n in sorted(analyzed) if n not in allocation]
        if missing:
            report.add(
                "uncovered-layers",
                Severity.WARNING,
                "analyzed layers without an allocation run at full "
                "precision: " + ", ".join(repr(n) for n in missing),
            )

    static_ranges: Dict[str, Interval] = {}
    if network is not None and input_range is not None:
        analysis = propagate_ranges(network, input_range)
        report.extend(analysis.report)
        static_ranges = analysis.analyzed_inputs

    for alloc in allocation:
        name = alloc.name
        if stats is not None and name in stats:
            max_abs = stats[name].max_abs_input
            needed = integer_bits_for_range(max_abs)
            if alloc.integer_bits < needed:
                report.add(
                    "overflow",
                    Severity.ERROR,
                    f"I={alloc.integer_bits} cannot represent the measured "
                    f"range max|X_K|={max_abs:.4g} (needs I>={needed}); "
                    "in-range activations will saturate at inference",
                    layer=name,
                    reference="Sec. II-A",
                )
        if name in static_ranges:
            bound = static_ranges[name]
            needed_static = integer_bits_for_range(bound.max_abs)
            if alloc.integer_bits < needed_static:
                report.add(
                    "static-range",
                    Severity.WARNING,
                    f"I={alloc.integer_bits} does not cover the statically "
                    f"propagated input bound {bound} (needs "
                    f"I>={needed_static}); inputs outside the calibration "
                    "set may overflow",
                    layer=name,
                    reference="Sec. II-A",
                )
        if alloc.fraction_bits < 0:
            dropped = -alloc.fraction_bits
            if dropped >= alloc.integer_bits:
                report.add(
                    "negative-f",
                    Severity.ERROR,
                    f"F={alloc.fraction_bits} drops {dropped} integer bits "
                    f"but only {alloc.integer_bits} exist (one is the "
                    "sign); the implicit shift is infeasible",
                    layer=name,
                    reference="Sec. II-A",
                )
            elif alloc.integer_bits + alloc.fraction_bits < MIN_BITWIDTH:
                report.add(
                    "negative-f",
                    Severity.ERROR,
                    f"I+F={alloc.integer_bits + alloc.fraction_bits} falls "
                    f"below the minimum word width {MIN_BITWIDTH}",
                    layer=name,
                    reference="Sec. II-A",
                )
        raw_width = alloc.integer_bits + alloc.fraction_bits
        if raw_width > MAX_BITWIDTH:
            report.add(
                "clamped-width",
                Severity.WARNING,
                f"requested width I+F={raw_width} exceeds the supported "
                f"maximum {MAX_BITWIDTH} and will be clamped; the realized "
                "rounding error is larger than the optimizer assumed",
                layer=name,
            )
    return report


def audit_xi(
    xi: Mapping[str, float],
    xi_floor: Optional[float] = None,
) -> CheckReport:
    """Check the error-share vector invariants of Eq. 6/8."""
    report = CheckReport()
    if not xi:
        report.add("xi-empty", Severity.ERROR, "xi assigns no shares")
        return report
    if xi_floor is None:
        try:
            from ..optimize.sqp import XI_FLOOR as xi_floor_value
        except ImportError:  # scipy unavailable: fall back to the constant
            xi_floor_value = _DEFAULT_XI_FLOOR
        xi_floor = xi_floor_value
    total = float(sum(xi.values()))
    if abs(total - 1.0) > XI_SUM_TOLERANCE:
        report.add(
            "xi-sum",
            Severity.ERROR,
            f"sum of xi shares is {total:.8f}, not 1 (off by "
            f"{total - 1.0:+.3g}); sigma_YL is mis-budgeted across layers",
            reference="Eq. 6",
        )
    for name, share in xi.items():
        if share < 0.0:
            report.add(
                "xi-negative",
                Severity.ERROR,
                f"xi={share:.4g} is negative; sqrt(xi) in Eq. 7 is undefined",
                layer=name,
                reference="Eq. 7",
            )
        # Strictly-below-floor shares (beyond rounding fuzz) mean the
        # solver escaped its own bound constraint.
        elif share < xi_floor * (1.0 - 1e-9):
            report.add(
                "xi-floor",
                Severity.ERROR,
                f"xi={share:.4g} is below the solver floor {xi_floor:g}; "
                "the layer's Delta collapses to theta and its bitwidth "
                "explodes",
                layer=name,
                reference="Eq. 8",
            )
    return report


def audit_profiles(
    profiles: Mapping[str, LayerErrorProfile],
    r_squared_floor: float = R_SQUARED_FLOOR,
    lambda_floor: float = LAMBDA_FLOOR,
) -> CheckReport:
    """Gate the Eq. 5 fits that feed the Eq. 8 objective."""
    report = CheckReport()
    for name, profile in profiles.items():
        if abs(profile.lam) <= lambda_floor:
            report.add(
                "degenerate-lambda",
                Severity.ERROR,
                f"lambda={profile.lam:.4g} is (near) zero: Delta does not "
                "respond to the error share, so the Eq. 8 objective is "
                "flat in this layer's coordinate",
                layer=name,
                reference="Eq. 5",
            )
        elif profile.lam < 0.0:
            report.add(
                "negative-lambda",
                Severity.ERROR,
                f"lambda={profile.lam:.4g} is negative: more injected noise "
                "would *reduce* the output error, inverting Eq. 5",
                layer=name,
                reference="Eq. 5",
            )
        if profile.r_squared < 0.0:
            report.add(
                "negative-r2",
                Severity.ERROR,
                f"R^2={profile.r_squared:.4g} is negative: the fitted line "
                "predicts worse than the mean of the measurements",
                layer=name,
                reference="Eq. 5",
            )
        elif profile.r_squared < r_squared_floor:
            report.add(
                "low-r2",
                Severity.WARNING,
                f"R^2={profile.r_squared:.4g} below floor "
                f"{r_squared_floor}; the linear error model barely holds",
                layer=name,
                reference="Eq. 5",
            )
    return report


def audit_allocation_result(
    result: "AllocationResult",
    stats: Optional[Mapping[str, LayerStats]] = None,
    profiles: Optional[Mapping[str, LayerErrorProfile]] = None,
    network: Optional[Network] = None,
    input_range: Optional[Interval] = None,
) -> CheckReport:
    """Audit an :class:`~repro.optimize.allocator.AllocationResult`.

    Convenience wrapper combining the format, xi, and fit audits; this
    is what the pipeline runs after every allocation.
    """
    report = audit_allocation(
        result.allocation,
        stats=stats,
        network=network,
        input_range=input_range,
    )
    xi = getattr(result, "xi", None)
    if xi:
        report.extend(audit_xi(xi))
    if profiles is not None:
        report.extend(audit_profiles(profiles))
    return report
