"""Pass 4 — determinism static analysis (RNG discipline + key contract).

The cache (:mod:`repro.cache`) promises that a key hit returns bits
identical to recomputation; the engine promises bit-identical results
across worker counts and backends.  Both promises decompose into local
source-level rules that these checkers enforce statically:

``rng-outside-helper``
    Engine code draws randomness through anything other than the
    :mod:`repro.engine.rng` SeedSequence-coordinate helpers
    (``trial_rng``/``trial_seed_sequence``).  A bare
    ``np.random.default_rng(seed)`` inside the engine reintroduces the
    sequential coupling those helpers exist to remove: streams would
    depend on scheduling order, breaking backend-independence.  Scoped
    to files under an ``engine`` path component, excluding ``rng.py``
    itself (the one sanctioned construction site).
``unkeyed-field``
    A dataclass named in the key-field registry
    (:data:`repro.cache.keys.KEY_FIELD_REGISTRY`) grew a field that the
    registry does not classify.  This is the stale-cache hazard in its
    purest form: a new knob changes results, but keys computed before
    the knob existed still hit.
``stale-registry-entry``
    The converse: the registry classifies a field the dataclass no
    longer has.  Harmless at runtime, but it means the contract table
    and the code have drifted — the next reader can no longer trust it.
``invalid-disposition``
    A registry entry carries a disposition outside
    :data:`repro.cache.keys.KEY_FIELD_DISPOSITIONS`.
``missing-code-salt``
    A function whose name contains ``key`` feeds a hash object directly
    (``hashlib.*``/``_hasher()``) without referencing ``CODE_SALT`` or
    delegating to ``make_key``.  Keys without the code-version salt
    survive numerics changes — precisely the invalidation bug the salt
    exists to rule out.
``unstable-iteration``
    A key/digest/fingerprint-named function iterates ``.items()`` /
    ``.keys()`` / ``.values()`` without ``sorted(...)``.  Dict order is
    insertion order, so the digest depends on construction history, not
    content.
``mutable-spec-field``
    A frozen ``*Spec`` dataclass declares a field with a mutable
    container annotation (``List``/``Dict``/``Set``) or a
    ``default_factory`` of one.  Specs are hashed into fingerprints and
    pickled to workers; mutable fields make both unreliable.

Suppression: ``# repro-check: ignore[rule-id]`` on the offending line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity

_HASH_CTORS = {"sha256", "sha1", "sha512", "md5", "blake2b", "blake2s",
               "new", "_hasher"}
_DICT_VIEWS = {"items", "keys", "values"}
_MUTABLE_ANNOTATIONS = {"List", "Dict", "Set", "list", "dict", "set"}
_MUTABLE_FACTORIES = {"list", "dict", "set"}
_KEYLIKE = ("key", "digest", "fingerprint")


def _attr_chain(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _finding(
    rule: str, path: str, node: Optional[ast.AST], message: str
) -> Finding:
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        path=path,
        line=getattr(node, "lineno", None) if node is not None else None,
        reference="docs/caching.md",
    )


# ----------------------------------------------------------------------
# rng-outside-helper
# ----------------------------------------------------------------------


def _is_engine_file(path: str) -> bool:
    p = Path(path)
    parts = {part.lower() for part in p.parts}
    return ("engine" in parts or "engine" in p.stem.lower()) and (
        p.name != "rng.py"
    )


def _check_rng(path: str, tree: ast.Module) -> List[Finding]:
    if not _is_engine_file(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        bad: Optional[str] = None
        if len(chain) >= 2 and chain[-2] == "random" and chain[0] in (
            "np", "numpy"
        ):
            if chain[-1] not in ("SeedSequence", "Generator"):
                bad = ".".join(chain)
        elif chain == ["default_rng"] or chain == ["RandomState"]:
            bad = chain[0]
        if bad is not None:
            findings.append(
                _finding(
                    "rng-outside-helper",
                    path,
                    node,
                    f"engine code calls {bad}() directly; draw streams "
                    "through repro.engine.rng.trial_rng / "
                    "trial_seed_sequence so every trial's stream is a "
                    "pure function of its coordinates, not of "
                    "scheduling order",
                )
            )
    return findings


# ----------------------------------------------------------------------
# unkeyed-field / stale-registry-entry / invalid-disposition
# ----------------------------------------------------------------------


def _is_dataclass_decorated(cls: ast.ClassDef) -> Tuple[bool, bool]:
    """(is_dataclass, is_frozen) from the decorator list."""
    is_dc = False
    frozen = False
    for deco in cls.decorator_list:
        name = None
        if isinstance(deco, ast.Call):
            chain = _attr_chain(deco.func)
            name = chain[-1] if chain else None
            if name == "dataclass":
                for kw in deco.keywords:
                    if kw.arg == "frozen" and isinstance(
                        kw.value, ast.Constant
                    ):
                        frozen = bool(kw.value.value)
        else:
            chain = _attr_chain(deco)
            name = chain[-1] if chain else None
        if name == "dataclass":
            is_dc = True
    return is_dc, frozen


def _dataclass_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Annotated class-level fields, excluding ClassVar declarations."""
    fields: Dict[str, ast.AnnAssign] = {}
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        ann = stmt.annotation
        head = ann.value if isinstance(ann, ast.Subscript) else ann
        chain = _attr_chain(head)
        if chain and chain[-1] == "ClassVar":
            continue
        fields[stmt.target.id] = stmt
    return fields


def _check_registry(
    path: str,
    tree: ast.Module,
    registry: Mapping[str, Mapping[str, str]],
    dispositions: Set[str],
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name not in registry:
            continue
        is_dc, _frozen = _is_dataclass_decorated(node)
        if not is_dc:
            continue
        declared = registry[node.name]
        fields = _dataclass_fields(node)
        for field_name, stmt in fields.items():
            if field_name not in declared:
                findings.append(
                    _finding(
                        "unkeyed-field",
                        path,
                        stmt,
                        f"{node.name}.{field_name} has no entry in "
                        "KEY_FIELD_REGISTRY (repro/cache/keys.py); "
                        "declare it keyed, excluded-by-contract, or "
                        "non-numeric — an unclassified field is a "
                        "stale-cache hazard",
                    )
                )
        for field_name, disposition in declared.items():
            if field_name not in fields:
                findings.append(
                    _finding(
                        "stale-registry-entry",
                        path,
                        node,
                        f"KEY_FIELD_REGISTRY classifies "
                        f"{node.name}.{field_name} but the dataclass "
                        "has no such field; remove the stale entry",
                    )
                )
            if disposition not in dispositions:
                findings.append(
                    _finding(
                        "invalid-disposition",
                        path,
                        node,
                        f"KEY_FIELD_REGISTRY entry "
                        f"{node.name}.{field_name} has unknown "
                        f"disposition {disposition!r}",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# missing-code-salt / unstable-iteration
# ----------------------------------------------------------------------


def _references_name(fn: ast.AST, names: Set[str]) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in names:
            return True
    return False


def _hashes_directly(fn: ast.AST) -> Optional[ast.AST]:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain:
            continue
        if chain[-1] in _HASH_CTORS and (
            len(chain) == 1 or chain[0] in ("hashlib",)
        ):
            return node
    return None


def _check_salt(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if "key" not in node.name.lower():
            continue
        hash_site = _hashes_directly(node)
        if hash_site is None:
            continue
        if _references_name(node, {"CODE_SALT", "make_key"}):
            continue
        findings.append(
            _finding(
                "missing-code-salt",
                path,
                hash_site,
                f"{node.name}() hashes key material without folding in "
                "CODE_SALT (and does not delegate to make_key); keys "
                "built here survive numerics changes and serve stale "
                "bits",
            )
        )
    return findings


def _unsorted_views(fn: ast.AST) -> List[ast.AST]:
    """Dict-view iterations not wrapped in ``sorted(...)``."""
    sorted_args: Set[int] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for arg in node.args:
                for sub in ast.walk(arg):
                    sorted_args.add(id(sub))
    sites: List[ast.AST] = []

    def view_call(expr: ast.expr) -> Optional[ast.Call]:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _DICT_VIEWS
            and not expr.args
        ):
            return expr
        return None

    for node in ast.walk(fn):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            call = view_call(it)
            if call is not None and id(call) not in sorted_args:
                sites.append(call)
    return sites


def _check_iteration(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        lowered = node.name.lower()
        if not any(token in lowered for token in _KEYLIKE):
            continue
        for site in _unsorted_views(node):
            findings.append(
                _finding(
                    "unstable-iteration",
                    path,
                    site,
                    f"{node.name}() iterates a dict view without "
                    "sorted(); insertion order leaks into the "
                    "key/digest, so equal inputs built in different "
                    "orders hash differently",
                )
            )
    return findings


# ----------------------------------------------------------------------
# mutable-spec-field
# ----------------------------------------------------------------------


def _mutable_annotation(ann: ast.expr) -> Optional[str]:
    head = ann.value if isinstance(ann, ast.Subscript) else ann
    chain = _attr_chain(head)
    if chain and chain[-1] in _MUTABLE_ANNOTATIONS:
        return chain[-1]
    return None


def _mutable_factory(value: Optional[ast.expr]) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    if not chain or chain[-1] != "field":
        return None
    for kw in value.keywords:
        if kw.arg == "default_factory":
            factory = _attr_chain(kw.value)
            if factory and factory[-1] in _MUTABLE_FACTORIES:
                return factory[-1]
    return None


def _check_spec_fields(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Spec"):
            continue
        is_dc, frozen = _is_dataclass_decorated(node)
        if not (is_dc and frozen):
            continue
        for field_name, stmt in _dataclass_fields(node).items():
            kind = _mutable_annotation(stmt.annotation)
            kind = kind or _mutable_factory(stmt.value)
            if kind is None:
                continue
            findings.append(
                _finding(
                    "mutable-spec-field",
                    path,
                    stmt,
                    f"frozen spec {node.name}.{field_name} is a mutable "
                    f"{kind}; specs are fingerprinted and pickled to "
                    "workers — use a tuple (or Sequence with a tuple "
                    "default)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def analyze_determinism(
    files: Sequence[Tuple[str, str]],
    registry: Optional[Mapping[str, Mapping[str, str]]] = None,
    dispositions: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run every determinism rule over a corpus of (path, source).

    ``registry`` defaults to the live
    :data:`repro.cache.keys.KEY_FIELD_REGISTRY`; tests inject reduced
    tables to prove that deleting an entry is detected.  Per-line
    suppressions are applied by the caller
    (:func:`repro.check.registry.run_analyzers`).
    """
    if registry is None:
        from ..cache.keys import KEY_FIELD_REGISTRY
        registry = KEY_FIELD_REGISTRY
    if dispositions is None:
        from ..cache.keys import KEY_FIELD_DISPOSITIONS
        dispositions = set(KEY_FIELD_DISPOSITIONS)
    findings: List[Finding] = []
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    severity=Severity.ERROR,
                    message=str(exc.msg),
                    path=path,
                    line=exc.lineno,
                )
            )
            continue
        findings.extend(_check_rng(path, tree))
        findings.extend(
            _check_registry(path, tree, registry, set(dispositions))
        )
        findings.extend(_check_salt(path, tree))
        findings.extend(_check_iteration(path, tree))
        findings.extend(_check_spec_fields(path, tree))
    return findings


__all__ = ["analyze_determinism"]
