"""Finding and report types shared by every static-analysis pass.

A :class:`Finding` is one verifier or linter result: a machine-readable
rule id, a severity, a human-readable message, and enough location
information (layer name for graph findings, ``path:line`` for lint
findings) to act on it.  A :class:`CheckReport` aggregates findings
across passes and decides the process exit code, mirroring the
strict/permissive split of the resilience layer: errors always fail,
warnings fail only under ``--strict``.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..resilience.guards import Diagnostic


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (INFO < ERROR)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One static-analysis result."""

    rule: str  #: machine-readable rule id ("overflow", "float-equality", ...)
    severity: Severity
    message: str  #: human-readable description with the offending values
    layer: Optional[str] = None  #: graph findings: the layer concerned
    path: Optional[str] = None  #: lint findings: source file
    line: Optional[int] = None  #: lint findings: 1-based source line
    #: Which part of the paper the violated precondition comes from
    #: ("Eq. 5", "Sec. II-A", ...); empty for code-hygiene rules.
    reference: str = ""

    def digest(self, root: Optional[Path] = None) -> str:
        """Stable 16-hex identity: SHA-256 over ``file:line:rule``.

        The same defect reported through two import paths (``src/x.py``
        vs. an absolute path to the same file) digests identically, and
        messages stay out of the hash so a reworded diagnostic does not
        churn committed baselines.  ``root`` relativizes the path when
        the file lives under it; paths are normalized to POSIX form so
        digests match across platforms.
        """
        where = ""
        if self.path is not None:
            resolved = Path(self.path)
            try:
                resolved = resolved.resolve()
            except OSError:  # pragma: no cover - dangling symlink etc.
                pass
            if root is not None:
                try:
                    resolved = resolved.relative_to(Path(root).resolve())
                except ValueError:
                    pass
            where = str(PurePosixPath(resolved))
        elif self.layer is not None:
            where = f"[{self.layer}]"
        token = f"{where}:{self.line or 0}:{self.rule}"
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line`` or ``[layer]`` or empty."""
        if self.path is not None:
            where = self.path
            if self.line is not None:
                where += f":{self.line}"
            return where
        if self.layer is not None:
            return f"[{self.layer}]"
        return ""

    def __str__(self) -> str:
        where = self.location()
        prefix = f"{where}: " if where else ""
        ref = f" ({self.reference})" if self.reference else ""
        return f"{prefix}{self.severity}: {self.message} [{self.rule}]{ref}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "layer": self.layer,
            "path": self.path,
            "line": self.line,
            "reference": self.reference,
        }


@dataclass
class CheckReport:
    """Findings from one or more passes, with exit-code policy."""

    findings: List[Finding] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        layer: Optional[str] = None,
        path: Optional[str] = None,
        line: Optional[int] = None,
        reference: str = "",
    ) -> Finding:
        finding = Finding(
            rule=rule,
            severity=severity,
            message=message,
            layer=layer,
            path=path,
            line=line,
            reference=reference,
        )
        self.findings.append(finding)
        return finding

    def extend(self, other: "CheckReport") -> "CheckReport":
        self.findings.extend(other.findings)
        return self

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __bool__(self) -> bool:
        """Truthy when there is anything to report (do not use for pass/fail)."""
        return bool(self.findings)

    # ------------------------------------------------------------------
    def at_least(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    @property
    def errors(self) -> List[Finding]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def ok(self, strict: bool = False) -> bool:
        """True when nothing fails: no errors, and (strict) no warnings."""
        threshold = Severity.WARNING if strict else Severity.ERROR
        return not self.at_least(threshold)

    def exit_code(self, strict: bool = False) -> int:
        return 0 if self.ok(strict) else 1

    # ------------------------------------------------------------------
    def render(self, verbose: bool = False) -> str:
        """Multi-line human-readable report (INFO lines only if verbose)."""
        shown = [
            f
            for f in self.findings
            if verbose or f.severity > Severity.INFO
        ]
        lines = [str(f) for f in shown]
        num_err = len(self.errors)
        num_warn = len(self.warnings)
        lines.append(
            f"{num_err} error(s), {num_warn} warning(s), "
            f"{len(self.findings) - num_err - num_warn} info"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.as_dict() for f in self.findings],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            indent=2,
        )

    def to_diagnostics(self, stage: str = "static_check") -> List["Diagnostic"]:
        """Project WARNING+ findings onto resilience Diagnostic records.

        This is the bridge the pipeline uses: pre-run verification
        findings flow through the same :func:`repro.resilience.enforce`
        machinery as every other guardrail (strict raises, default
        warns), so callers see one diagnostic vocabulary.
        """
        from ..resilience.guards import Diagnostic

        return [
            Diagnostic(
                stage=stage,
                code=f.rule,
                message=str(f),
                layer=f.layer,
            )
            for f in self.at_least(Severity.WARNING)
        ]
