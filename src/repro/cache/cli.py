"""``repro cache {stats,gc,verify}`` — operate on a cache directory."""

from __future__ import annotations

import argparse

from . import resolve_cache_dir
from .maintenance import DEFAULT_MAX_BYTES, cache_stats, gc, verify

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """``'500M'`` -> bytes; bare integers are bytes."""
    text = text.strip().lower().rstrip("b")
    if text and text[-1] in _SUFFIXES:
        return int(float(text[:-1]) * _SUFFIXES[text[-1]])
    return int(text)


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action",
        choices=["stats", "gc", "verify"],
        help=(
            "stats: entry/byte counts per namespace; gc: LRU-evict down "
            "to --max-bytes; verify: checksum every entry"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help=(
            "cache directory (default: $REPRO_CACHE_DIR, else .repro-cache)"
        ),
    )
    parser.add_argument(
        "--max-bytes",
        default="",
        metavar="SIZE",
        help=(
            "gc budget, e.g. 500M or 2G "
            f"(default {DEFAULT_MAX_BYTES // 1024**2} MB)"
        ),
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="verify only: delete entries that fail their checksum",
    )


def run_cache(args: argparse.Namespace) -> int:
    directory = resolve_cache_dir(args.cache_dir or None)
    if args.action == "stats":
        for line in cache_stats(directory).lines():
            print(line)
        return 0
    if args.action == "gc":
        budget = parse_size(args.max_bytes) if args.max_bytes else DEFAULT_MAX_BYTES
        print(gc(directory, max_bytes=budget).describe())
        return 0
    report = verify(directory, prune=args.prune)
    print(report.describe())
    for path in report.corrupt:
        print(f"  corrupt: {path}")
    return 0 if report.clean else 1
