"""Persistent content-addressed result cache (``docs/caching.md``).

Every expensive quantity the paper's pipeline computes — clean
activations, per-layer Eq. 5 fits, sigma-search accuracy evaluations,
final bit allocations — is a pure, deterministic function of the model
weights, the calibration images, the seed, the probe grid, and the code
version.  This package stores those quantities on disk under keys
derived from exactly those inputs, so a repeated or swept run never
recomputes what an earlier run already proved:

* :mod:`repro.cache.keys` — content digests and canonical key hashing.
* :mod:`repro.cache.store` — atomic, checksummed, mmap-able artifact
  store (:class:`ResultCache`) with hit/miss/byte telemetry.
* :mod:`repro.cache.maintenance` — stats / size-budgeted LRU GC /
  integrity verification (the ``repro cache`` CLI).
* :mod:`repro.cache.leases` — atomic lease files with TTL + heartbeat,
  the claim protocol distributed sweep workers coordinate through
  (``docs/distributed.md``).

A corrupt or missing entry is always a miss (the damaged file is
dropped and the value recomputed); cached results are bit-identical to
recomputed ones by construction, and the whole layer disconnects via
``--no-cache``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .keys import (
    CODE_SALT,
    array_digest,
    dataset_digest,
    make_key,
    network_digest,
    profiles_digest,
)
from .leases import (
    Lease,
    LeaseHeartbeat,
    LeaseSettings,
    acquire_lease,
    lease_age_seconds,
    lease_is_expired,
    read_lease,
    steal_expired_lease,
)
from .maintenance import (
    DEFAULT_MAX_BYTES,
    CacheStatsReport,
    GCReport,
    VerifyReport,
    cache_stats,
    gc,
    verify,
)
from .store import CacheCounters, ResultCache

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Directory used when neither a flag nor the environment names one.
DEFAULT_CACHE_DIR = ".repro-cache"


def resolve_cache_dir(directory: Union[str, Path, None] = None) -> Path:
    """The cache directory a CLI invocation should operate on."""
    if directory:
        return Path(directory)
    env = os.environ.get(CACHE_DIR_ENV, "")
    return Path(env) if env else Path(DEFAULT_CACHE_DIR)


def open_cache(
    cache: Union[None, str, Path, ResultCache],
    metrics: Optional[object] = None,
) -> Optional[ResultCache]:
    """Coerce a user-facing cache knob into a store (or None = off)."""
    from ..telemetry.metrics import MetricsRegistry

    if cache is None or isinstance(cache, ResultCache):
        return cache
    registry = metrics if isinstance(metrics, MetricsRegistry) else None
    return ResultCache(Path(cache), metrics=registry)


__all__ = [
    "CACHE_DIR_ENV",
    "CODE_SALT",
    "CacheCounters",
    "CacheStatsReport",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "GCReport",
    "Lease",
    "LeaseHeartbeat",
    "LeaseSettings",
    "ResultCache",
    "VerifyReport",
    "acquire_lease",
    "array_digest",
    "cache_stats",
    "dataset_digest",
    "gc",
    "lease_age_seconds",
    "lease_is_expired",
    "make_key",
    "network_digest",
    "open_cache",
    "profiles_digest",
    "read_lease",
    "resolve_cache_dir",
    "steal_expired_lease",
    "verify",
]
