"""Cache maintenance: stats, size-budgeted LRU GC, integrity verify.

These back the ``repro cache {stats,gc,verify}`` CLI but are plain
functions so tests and long-running services can call them directly.
All three walk the on-disk store only through its public layout
(``objects/<namespace>/<shard>/<key>.<ext>``); they never need the key
material that produced an entry.
"""

from __future__ import annotations

import json
import mmap
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from .store import PathLike, ResultCache, _JSON_EXT, _sha256

#: Default GC budget: plenty for every experiment in the repo while
#: bounding an unattended cache directory.
DEFAULT_MAX_BYTES = 2 * 1024**3


def _entries(directory: Path) -> List[Path]:
    objects = directory / "objects"
    if not objects.is_dir():
        return []
    return [p for p in sorted(objects.rglob("*")) if p.is_file()]


@dataclass
class CacheStatsReport:
    """Aggregate view of a cache directory."""

    directory: Path
    num_entries: int = 0
    total_bytes: int = 0
    #: (entry count, bytes) per namespace.
    namespaces: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def lines(self) -> List[str]:
        out = [
            f"{self.directory}: {self.num_entries} entries, "
            f"{self.total_bytes / 1e6:.2f} MB"
        ]
        for name in sorted(self.namespaces):
            count, nbytes = self.namespaces[name]
            out.append(f"  {name:<12} {count:>6} entries  {nbytes / 1e6:>10.2f} MB")
        return out


def cache_stats(directory: PathLike) -> CacheStatsReport:
    """Entry/byte counts per namespace for a cache directory."""
    directory = Path(directory)
    report = CacheStatsReport(directory=directory)
    for path in _entries(directory):
        size = path.stat().st_size
        namespace = path.parent.parent.name
        report.num_entries += 1
        report.total_bytes += size
        count, nbytes = report.namespaces.get(namespace, (0, 0))
        report.namespaces[namespace] = (count + 1, nbytes + size)
    return report


@dataclass
class GCReport:
    """What one GC pass deleted and what remains."""

    directory: Path
    max_bytes: int
    deleted_entries: int = 0
    deleted_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0
    #: Orphaned temporaries from interrupted writes, also removed.
    deleted_tmp_files: int = 0

    def describe(self) -> str:
        return (
            f"gc {self.directory}: deleted {self.deleted_entries} entries "
            f"({self.deleted_bytes / 1e6:.2f} MB) + "
            f"{self.deleted_tmp_files} stale tmp files; "
            f"{self.remaining_entries} entries "
            f"({self.remaining_bytes / 1e6:.2f} MB) <= budget "
            f"{self.max_bytes / 1e6:.2f} MB"
        )


def gc(directory: PathLike, max_bytes: int = DEFAULT_MAX_BYTES) -> GCReport:
    """Evict least-recently-used entries until the store fits the budget.

    Access time is the entry's mtime (touched by every cache hit), so
    eviction order is true LRU regardless of when an entry was written.
    Interrupted-write temporaries (``.tmp-*``) are always removed.
    """
    directory = Path(directory)
    report = GCReport(directory=directory, max_bytes=int(max_bytes))
    survivors: List[Tuple[float, int, Path]] = []
    for path in _entries(directory):
        if path.name.startswith(".tmp-"):
            try:
                path.unlink()
                report.deleted_tmp_files += 1
            except OSError:  # pragma: no cover - raced away
                pass
            continue
        stat = path.stat()
        survivors.append((stat.st_mtime, stat.st_size, path))
    total = sum(size for __, size, __p in survivors)
    survivors.sort()  # oldest access first
    index = 0
    while total > report.max_bytes and index < len(survivors):
        __, size, path = survivors[index]
        try:
            path.unlink()
            report.deleted_entries += 1
            report.deleted_bytes += size
            total -= size
        except OSError:  # pragma: no cover - raced away
            pass
        index += 1
    report.remaining_entries = len(survivors) - report.deleted_entries
    report.remaining_bytes = total
    return report


@dataclass
class VerifyReport:
    """Integrity sweep over every stored entry."""

    directory: Path
    checked: int = 0
    ok: int = 0
    corrupt: List[Path] = field(default_factory=list)
    #: True when corrupt entries were deleted (``prune=True``).
    pruned: bool = False

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def describe(self) -> str:
        status = "OK" if self.clean else f"{len(self.corrupt)} CORRUPT"
        return f"verify {self.directory}: {self.checked} entries checked, {status}"


def _entry_is_valid(path: Path) -> bool:
    """Full checksum validation of one entry file."""
    try:
        if path.suffix == _JSON_EXT:
            envelope = json.loads(path.read_bytes())
            body = envelope["payload"]
            return bool(_sha256(body.encode("utf-8")) == envelope["checksum"])
        with path.open("rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        ok = False
        try:
            ResultCache._decode_arrays(mapped)
            ok = True
        except (ValueError, KeyError, TypeError, IndexError):
            # Leave the except block before closing the map: the
            # traceback pins frame locals that still view the buffer.
            pass
        mapped.close()
        return ok
    except (OSError, ValueError, KeyError, TypeError, IndexError):
        return False


def verify(directory: PathLike, prune: bool = False) -> VerifyReport:
    """Checksum every entry; optionally delete the damaged ones."""
    directory = Path(directory)
    report = VerifyReport(directory=directory, pruned=prune)
    for path in _entries(directory):
        if path.name.startswith(".tmp-"):
            continue
        report.checked += 1
        if _entry_is_valid(path):
            report.ok += 1
        else:
            report.corrupt.append(path)
            if prune:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - raced away
                    pass
    return report
