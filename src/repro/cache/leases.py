"""Store-side lease files: exclusive cell claims for distributed sweeps.

A distributed sweep (:mod:`repro.experiments.distributed`) fans cells
out to workers that share nothing but a directory — typically inside
(or beside) the content-addressed store.  Workers coordinate through
**lease files**: one file per in-flight cell, created atomically, so at
most one worker executes a cell at a time *in the common case*, and a
cell whose worker died is re-dispatched after a TTL.

The protocol (see ``docs/distributed.md``):

``acquire``
    ``os.open(path, O_CREAT | O_EXCL | O_WRONLY)`` — the POSIX atomic
    claim.  Exactly one concurrent caller wins; everyone else gets
    ``None``.  The file body is a single ``os.write`` of JSON metadata
    (owner, pid, host, a random fencing token, TTL) for humans and
    diagnostics; liveness never depends on parsing it.
``renew`` (heartbeat)
    ``os.utime(path)`` — the lease's **mtime is its heartbeat clock**.
    A single atomic syscall, no read-modify-write, and it works even if
    another process damaged the body.  Workers renew from a background
    thread (:class:`LeaseHeartbeat`) every ``heartbeat_seconds`` while
    the cell executes.
``expiry``
    A lease whose mtime is older than ``ttl_seconds`` belongs to a
    crashed or SIGKILLed worker (live workers renew at ``ttl / 4`` by
    default, so many missed beats separate "slow" from "dead").
``steal``
    ``os.rename(path, path + ".stale-<token>")`` — atomic: exactly one
    of any number of concurrent stealers wins the rename; losers get
    ``FileNotFoundError`` and walk away.  The winner removes the tomb
    and re-acquires fresh.
``release``
    ``os.unlink(path)``; a missing file (already stolen) is not an
    error — the worker finished anyway and publication is idempotent.

What leases do **not** guarantee: a worker stalled longer than the TTL
(not dead, just descheduled) can be stolen from and later finish its
cell anyway.  That is safe *by design*: results are published into the
store via atomic write-then-rename with content determined solely by
the cell's inputs, so duplicate completion publishes identical rows and
the last writer wins.  Leases are a throughput optimization — they
prevent duplicate work, not duplicate results.

Every filesystem mutation of a lease file lives in this module; the
concurrency analyzer (``repro check --concurrency``) flags lease-file
writes anywhere else (rule ``lease-write-outside-helper``).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

PathLike = Union[str, Path]

#: Bumped when the lease-file body layout changes incompatibly.
LEASE_SCHEMA_VERSION = 1

#: Filename suffix of live lease files.
LEASE_SUFFIX = ".lease"


@dataclass(frozen=True)
class LeaseSettings:
    """Timing knobs of the lease protocol.

    None of these can reach a numeric code path: they decide *when* a
    cell runs and on which worker, never what its result is (the
    distributed executor's bit-identity contract).  All three are
    classified ``non-numeric`` in the key-field registry.
    """

    #: Seconds without a heartbeat after which a lease is stealable.
    ttl_seconds: float = 60.0
    #: Heartbeat period; 0 means ``ttl_seconds / 4``.
    heartbeat_seconds: float = 0.0
    #: How long an idle worker waits before rescanning for work.
    poll_seconds: float = 0.5

    @property
    def effective_heartbeat(self) -> float:
        if self.heartbeat_seconds > 0:
            return self.heartbeat_seconds
        return max(self.ttl_seconds / 4.0, 0.05)


@dataclass
class Lease:
    """A successfully acquired claim on one cell."""

    path: Path
    owner: str
    #: Random fencing token unique to this acquisition; lets a steal
    #: tomb and diagnostics distinguish successive holders of one cell.
    token: str

    def renew(self) -> bool:
        """Heartbeat: bump the mtime clock.

        Returns False when the lease file no longer exists — it was
        stolen after this worker exceeded the TTL.  The worker should
        finish and publish anyway (publication is idempotent) but must
        know its exclusivity is gone.
        """
        try:
            os.utime(self.path)
        except OSError:
            return False
        return True

    def release(self) -> None:
        """Drop the claim; missing file (stolen) is not an error."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def acquire_lease(
    path: PathLike, owner: str, settings: Optional[LeaseSettings] = None
) -> Optional[Lease]:
    """Atomically claim ``path``; None when another holder beat us.

    The O_CREAT|O_EXCL open is the claim itself — it either creates the
    file (we won) or fails with EEXIST (someone else holds it).  The
    JSON body is advisory metadata; a reader that finds it torn
    mid-write must still honour the lease via its mtime.
    """
    settings = settings or LeaseSettings()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    token = uuid.uuid4().hex[:12]
    try:
        fd = os.open(
            str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
        )
    except FileExistsError:
        return None
    body = {
        "schema": LEASE_SCHEMA_VERSION,
        "owner": str(owner),
        "token": token,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "ttl_seconds": float(settings.ttl_seconds),
    }
    try:
        os.write(fd, (json.dumps(body, sort_keys=True) + "\n").encode())
    finally:
        os.close(fd)
    return Lease(path=path, owner=str(owner), token=token)


def read_lease(path: PathLike) -> Optional[Dict[str, Any]]:
    """The advisory metadata of a lease file, or None when unreadable.

    A torn or damaged body does **not** mean the lease is invalid — the
    mtime clock, not the body, carries liveness.  Callers use this for
    diagnostics only.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def lease_age_seconds(path: PathLike) -> Optional[float]:
    """Seconds since the lease's last heartbeat, or None if gone."""
    import time

    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return max(0.0, time.time() - mtime)


def lease_is_expired(
    path: PathLike, settings: Optional[LeaseSettings] = None
) -> bool:
    """True when the lease exists but its heartbeat exceeded the TTL.

    A missing file is *not* expired — it is released, and the cell's
    state is decided by whether a result was published.
    """
    settings = settings or LeaseSettings()
    age = lease_age_seconds(path)
    return age is not None and age > settings.ttl_seconds


def steal_expired_lease(
    path: PathLike,
    owner: str,
    settings: Optional[LeaseSettings] = None,
) -> Optional[Lease]:
    """Take over an expired lease; None when we lost the steal race.

    The steal is an atomic ``os.rename`` to a unique tomb name: of any
    number of workers that concurrently observed the expiry, exactly
    one rename succeeds.  The winner unlinks the tomb and acquires a
    fresh lease; losers (``FileNotFoundError``) return None and rescan.
    """
    settings = settings or LeaseSettings()
    path = Path(path)
    if not lease_is_expired(path, settings):
        return None
    tomb = path.with_name(
        path.name + f".stale-{uuid.uuid4().hex[:8]}"
    )
    try:
        os.rename(path, tomb)
    except OSError:
        return None  # another stealer won, or the holder released
    try:
        os.unlink(tomb)
    except OSError:
        pass
    return acquire_lease(path, owner, settings)


class LeaseHeartbeat:
    """Background renewal of one lease while its cell executes.

    Starts a daemon thread that calls :meth:`Lease.renew` every
    ``settings.effective_heartbeat`` seconds until stopped.  If a
    renewal finds the lease gone (stolen after a stall), :attr:`lost`
    latches True and renewal stops — the worker finishes its cell and
    publishes regardless, relying on idempotent publication.
    """

    def __init__(self, lease: Lease, settings: LeaseSettings) -> None:
        self.lease = lease
        self.settings = settings
        self.lost = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        interval = self.settings.effective_heartbeat
        while not self._stop.wait(interval):
            if not self.lease.renew():
                self.lost = True
                return

    def start(self) -> "LeaseHeartbeat":
        thread = threading.Thread(
            target=self._run, name="repro-lease-heartbeat", daemon=True
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "LeaseHeartbeat":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = [
    "LEASE_SCHEMA_VERSION",
    "LEASE_SUFFIX",
    "Lease",
    "LeaseHeartbeat",
    "LeaseSettings",
    "acquire_lease",
    "lease_age_seconds",
    "lease_is_expired",
    "read_lease",
    "steal_expired_lease",
]
