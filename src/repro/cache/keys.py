"""Content-addressed cache keys (the PR-4 manifest hash, fine-grained).

A cache entry is only reusable when *every* input that determines the
bits of the stored result is part of its key.  For this repository the
expensive quantities — clean activations, per-layer Eq. 5 regressions,
sigma-search accuracy evaluations, final bit allocations — are pure
functions of:

* the network's **weights** (and structure: layer types, wiring,
  strides, ...),
* the **calibration/evaluation images** actually consumed,
* the **seed** material and trial-coordinate layout,
* the delta/sigma **grid** probed, and
* the **code version** of the numerics (:data:`CODE_SALT`).

Anything else — worker counts, pool backend, trial batching, telemetry
— is excluded *by design*: the engine's determinism contract guarantees
bit-identical results across those knobs (``docs/performance.md``), so
including them would only fragment the cache.

Digests are full SHA-256 hex strings; :func:`make_key` folds a mapping
of (pre-digested) parts into one canonical key.  Floats are encoded via
``float.hex`` so two keys are equal iff the inputs are bit-equal.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, Mapping

import numpy as np

from ..sanitize import sanitize_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..analysis.profiler import LayerErrorProfile
    from ..data import Dataset
    from ..nn.graph import Network

#: Version salt folded into every cache key.  Bump whenever a change
#: alters the *bits* of any cached quantity (kernel numerics, RNG
#: layout, reduction order); bumping invalidates every existing entry.
CODE_SALT = "repro-cache-v1"

# ----------------------------------------------------------------------
# Key-field registry: the determinism contract, machine-readable.
# ----------------------------------------------------------------------

#: The field is (directly or via a digest) part of every cache key that
#: its value can influence; changing it must miss.
KEYED = "keyed"
#: The field can change *how* a result is computed but never its bits —
#: the engine's determinism contract (``docs/performance.md``) covers
#: it, so keying it would only fragment the cache.
EXCLUDED_BY_CONTRACT = "excluded-by-contract"
#: The field never reaches a numeric code path (observability,
#: persistence, and policy knobs); exclusion needs no contract.
NON_NUMERIC = "non-numeric"

#: Every legal disposition a registry entry may carry.
KEY_FIELD_DISPOSITIONS = frozenset(
    {KEYED, EXCLUDED_BY_CONTRACT, NON_NUMERIC}
)

#: Machine-readable determinism contract for every configuration
#: dataclass whose fields can reach a cached computation: class name ->
#: field name -> disposition.  The determinism analyzer
#: (:mod:`repro.check.determinism`) statically cross-checks this table
#: against the dataclass definitions — a field added to any of these
#: classes without a registry entry (the stale-cache hazard: it changes
#: results but old keys still hit) fails ``repro check --determinism``,
#: as does a registry entry whose field no longer exists.
KEY_FIELD_REGISTRY: Dict[str, Dict[str, str]] = {
    "ProfileSettings": {
        "num_images": KEYED,
        "num_delta_points": KEYED,
        "delta_min": KEYED,
        "delta_max": KEYED,
        "num_repeats": KEYED,
        "seed": KEYED,
    },
    "SearchSettings": {
        "tolerance": KEYED,
        "initial_upper": KEYED,
        "max_doublings": KEYED,
        "num_images": KEYED,
        "num_trials": KEYED,
        "seed": KEYED,
    },
    "ParallelSettings": {
        "jobs": EXCLUDED_BY_CONTRACT,
        "backend": EXCLUDED_BY_CONTRACT,
        "trial_batch": EXCLUDED_BY_CONTRACT,
        "transient_retries": NON_NUMERIC,
        "fast_kernels": EXCLUDED_BY_CONTRACT,
        "tune_allocator": EXCLUDED_BY_CONTRACT,
    },
    "TelemetrySettings": {
        "enabled": NON_NUMERIC,
        "trace_path": NON_NUMERIC,
        # Lifecycle events and resource samples are emitted at stage
        # boundaries only — numerics are bit-identical on or off
        # (docs/observability.md), so neither belongs in cache keys.
        "events_dir": NON_NUMERIC,
        "sample_resources": NON_NUMERIC,
    },
    "ExperimentConfig": {
        "model": KEYED,
        "num_classes": KEYED,
        "train_count": KEYED,
        "test_count": KEYED,
        "profile_images": KEYED,
        "profile_points": KEYED,
        "profile_repeats": KEYED,
        "search_trials": KEYED,
        "scheme": KEYED,
        "seed": KEYED,
        "strict": KEYED,
        "state_dir": NON_NUMERIC,
        "jobs": EXCLUDED_BY_CONTRACT,
        "parallel_backend": EXCLUDED_BY_CONTRACT,
        "telemetry": NON_NUMERIC,
        "trace_out": NON_NUMERIC,
        "events_dir": NON_NUMERIC,
        "cache_dir": NON_NUMERIC,
        "no_cache": NON_NUMERIC,
    },
    "SweepSpec": {
        "models": KEYED,
        "accuracy_drops": KEYED,
        "objectives": KEYED,
    },
    "AblationSpec": {
        "models": KEYED,
        "accuracy_drop": KEYED,
        "objective": KEYED,
        "components": KEYED,
        "scenarios": KEYED,
        "chaos_cells": EXCLUDED_BY_CONTRACT,
    },
    # Distributed-sweep coordination (docs/distributed.md): lease
    # timing decides *when* a cell runs and on which worker; worker
    # count and spawn mechanism decide *where*.  None of them can reach
    # a numeric code path — the executor's bit-identity contract — so
    # nothing here is keyed, and the plan fingerprint folds only the
    # KEYED fields of SweepSpec/ExperimentConfig above.
    "LeaseSettings": {
        "ttl_seconds": NON_NUMERIC,
        "heartbeat_seconds": NON_NUMERIC,
        "poll_seconds": NON_NUMERIC,
    },
    "DistributedSettings": {
        "workers": EXCLUDED_BY_CONTRACT,
        "spawn": EXCLUDED_BY_CONTRACT,
        "max_cells": NON_NUMERIC,
    },
    # Quantized-execution runtime (packed-weight entries): weight_bits
    # changes the packed bits; backend and pack_activations cannot —
    # the runtime's bit-identity contract (docs/quantized-execution.md)
    # guarantees identical integer accumulators for every backend and
    # identical codes packed or not.
    "RuntimeSpec": {
        "weight_bits": KEYED,
        "backend": EXCLUDED_BY_CONTRACT,
        "pack_activations": EXCLUDED_BY_CONTRACT,
    },
}


def _hasher() -> "hashlib._Hash":
    return hashlib.sha256()


def array_digest(array: np.ndarray) -> str:
    """SHA-256 over an array's dtype, shape, and C-contiguous bytes."""
    array = np.asarray(array)
    h = _hasher()
    h.update(array.dtype.str.encode("ascii"))
    h.update(repr(tuple(array.shape)).encode("ascii"))
    h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


def _canonical(value: Any) -> Any:
    """JSON-able canonical form; floats keep their exact bits."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (np.floating, float)):
        return f"f:{float(value).hex()}"
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, np.ndarray):
        return f"a:{array_digest(value)}"
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value)}
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a cache key; "
        "digest it explicitly first"
    )


def make_key(parts: Mapping[str, Any]) -> str:
    """One content-addressed key from a mapping of key parts.

    The :data:`CODE_SALT` is always folded in, so callers cannot forget
    the code-version component of the invalidation story.
    """
    payload = dict(parts)
    payload["__salt__"] = CODE_SALT
    canonical = json.dumps(_canonical(payload), sort_keys=True)
    if sanitize_enabled():
        # Key recomputation tripwire: the canonical text must be a
        # fixed point of encode -> decode -> encode, and a second
        # canonicalization pass over the same payload must agree.  An
        # iteration-order-dependent or non-canonical encoding makes
        # keys drift between runs — exactly the stale-cache hazard the
        # determinism analyzer hunts statically.
        roundtrip = json.dumps(json.loads(canonical), sort_keys=True)
        second = json.dumps(_canonical(payload), sort_keys=True)
        if canonical != roundtrip or canonical != second:
            raise RuntimeError(
                "REPRO_SANITIZE: cache-key payload is not canonically "
                "stable (encoding differs between passes); keys built "
                "from it would drift between runs"
            )
    h = _hasher()
    h.update(canonical.encode("utf-8"))
    return h.hexdigest()


def network_digest(network: "Network") -> str:
    """Digest of a network's structure and every parameter array.

    Walks the layers in topological order hashing the layer type, its
    wiring, every scalar hyperparameter (stride, padding, groups, ...)
    and every ``np.ndarray`` attribute (weights, biases, affine
    scale/shift).  Two networks collide only if they compute the same
    function with the same bits.
    """
    h = _hasher()
    h.update(repr((network.name, tuple(network.input_shape))).encode())
    h.update(repr(network.output_name).encode())
    h.update(repr(tuple(network.analyzed_layer_names)).encode())
    for index, layer in enumerate(network.layers):
        h.update(
            repr(
                (index, type(layer).__name__, layer.name, tuple(layer.inputs))
            ).encode()
        )
        for attr in sorted(vars(layer)):
            if attr.startswith("_"):
                continue
            value = getattr(layer, attr)
            if isinstance(value, np.ndarray):
                h.update(attr.encode())
                h.update(array_digest(value).encode("ascii"))
            elif isinstance(value, (bool, int, float, str)) or value is None:
                h.update(repr((attr, value)).encode())
            elif isinstance(value, (list, tuple)):
                h.update(repr((attr, tuple(value))).encode())
    return h.hexdigest()


def dataset_digest(dataset: "Dataset") -> str:
    """Digest of an evaluation dataset (images, labels, class count)."""
    h = _hasher()
    h.update(array_digest(dataset.images).encode("ascii"))
    h.update(array_digest(dataset.labels).encode("ascii"))
    h.update(repr(int(dataset.num_classes)).encode())
    return h.hexdigest()


def profiles_digest(profiles: Mapping[str, "LayerErrorProfile"]) -> str:
    """Digest of fitted Eq. 5 parameters (what Eq. 7 deltas depend on).

    Scheme-1 accuracy evaluations inject deltas derived from the fitted
    ``(lambda_K, theta_K)``; a sigma-eval entry is only reusable when
    those fits are bit-equal.
    """
    h = _hasher()
    for name in sorted(profiles):
        profile = profiles[name]
        h.update(name.encode())
        h.update(float(profile.lam).hex().encode("ascii"))
        h.update(float(profile.theta).hex().encode("ascii"))
    return h.hexdigest()
