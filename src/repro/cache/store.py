"""Persistent content-addressed artifact store.

Layout (one file per entry, sharded by key prefix)::

    <dir>/objects/<namespace>/<key[:2]>/<key>.json   JSON payloads
    <dir>/objects/<namespace>/<key[:2]>/<key>.npb    array payloads

Array payloads use a flat binary format — an 8-byte magic, an 8-byte
little-endian header length, a JSON header (version, data checksum,
array descriptors), then the raw C-contiguous array bytes — so a read
can ``mmap`` the file and hand out zero-copy read-only views instead of
materializing copies (unlike ``.npz``, whose members cannot be mapped).

Durability and integrity:

* writes go to a temporary file in the same directory and are
  ``os.replace``d into place (atomic on POSIX) — a crash mid-write
  never leaves a partial entry visible;
* every payload carries a SHA-256 checksum which is verified on read;
* **any** failure on the read path (missing file, truncation, checksum
  mismatch, undecodable JSON) is a miss: the corrupt entry is deleted
  and the caller recomputes.  The cache can slow a run down, never
  poison or crash it.

Reads touch the entry's mtime, which is the LRU clock the size-budgeted
GC (:mod:`repro.cache.maintenance`) evicts by.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from ..sanitize import sanitize_enabled
from ..telemetry.metrics import MetricsRegistry

PathLike = Union[str, Path]

#: Bumped when the on-disk entry format changes incompatibly.
STORE_VERSION = 1

#: Magic prefix of the flat array-payload format.
ARRAY_MAGIC = b"RPROCAB1"

_JSON_EXT = ".json"
_ARRAY_EXT = ".npb"


@dataclass
class CacheCounters:
    """Hit/miss/byte accounting for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


def _sha256(data: Union[bytes, memoryview, mmap.mmap]) -> str:
    h = hashlib.sha256()
    h.update(data)
    return h.hexdigest()


@dataclass
class ResultCache:
    """Content-addressed persistent cache rooted at ``directory``.

    Thread-compatible for the repository's use: entries are immutable
    once written (same key => same bits), so concurrent writers racing
    on one key atomically replace identical content and readers see
    either a complete entry or none.
    """

    directory: Path
    #: Optional shared metrics registry; hit/miss/bytes counters land
    #: both here and in :attr:`counters`.
    metrics: Optional[MetricsRegistry] = None
    counters: CacheCounters = field(default_factory=CacheCounters)

    def __init__(
        self,
        directory: PathLike,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self.metrics = metrics
        self.counters = CacheCounters()

    # -- layout --------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.directory / "objects"

    def entry_path(self, namespace: str, key: str, ext: str) -> Path:
        return self.objects_dir / namespace / key[:2] / f"{key}{ext}"

    # -- counters ------------------------------------------------------
    def _count(self, counter: str, amount: int = 1) -> None:
        setattr(self.counters, counter, getattr(self.counters, counter) + amount)
        if self.metrics is not None:
            name = {
                "hits": "repro_cache_hits_total",
                "misses": "repro_cache_misses_total",
                "writes": "repro_cache_writes_total",
                "corrupt": "repro_cache_corrupt_total",
                "bytes_read": "repro_cache_bytes_read_total",
                "bytes_written": "repro_cache_bytes_written_total",
            }[counter]
            self.metrics.counter(name).inc(amount)

    def _miss(self) -> None:
        self._count("misses")

    def _hit(self, path: Path, nbytes: int) -> None:
        self._count("hits")
        self._count("bytes_read", nbytes)
        try:
            os.utime(path)  # the LRU clock the GC evicts by
        except OSError:  # pragma: no cover - entry raced away
            pass

    def _drop_corrupt(self, path: Path) -> None:
        """A damaged entry is deleted so it cannot keep costing reads."""
        self._count("corrupt")
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / read-only
            pass

    # -- atomic write --------------------------------------------------
    def _write_atomic(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("writes")
        self._count("bytes_written", len(data))

    # -- JSON payloads -------------------------------------------------
    def put_json(self, namespace: str, key: str, payload: Any) -> Path:
        """Store a JSON-able payload under (namespace, key)."""
        body = json.dumps(payload, sort_keys=True)
        envelope = {
            "version": STORE_VERSION,
            "checksum": _sha256(body.encode("utf-8")),
            "payload": body,
        }
        path = self.entry_path(namespace, key, _JSON_EXT)
        self._write_atomic(path, json.dumps(envelope).encode("utf-8"))
        if sanitize_enabled():
            self._verify_written_json(path)
        return path

    def get_json(self, namespace: str, key: str) -> Optional[Any]:
        """The stored payload, or None on miss/corruption (never raises)."""
        path = self.entry_path(namespace, key, _JSON_EXT)
        try:
            raw = path.read_bytes()
        except OSError:
            self._miss()
            return None
        try:
            envelope = json.loads(raw)
            if envelope.get("version") != STORE_VERSION:
                raise ValueError(f"version {envelope.get('version')!r}")
            body = envelope["payload"]
            if _sha256(body.encode("utf-8")) != envelope["checksum"]:
                raise ValueError("checksum mismatch")
            payload = json.loads(body)
        except (ValueError, KeyError, TypeError):
            self._drop_corrupt(path)
            self._miss()
            return None
        self._hit(path, len(raw))
        return payload

    # -- array payloads ------------------------------------------------
    def put_arrays(
        self,
        namespace: str,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Store named arrays as one flat, mmap-able binary entry."""
        descriptors = []
        chunks = []
        offset = 0
        for name in arrays:
            value = np.ascontiguousarray(arrays[name])
            descriptors.append(
                {
                    "name": name,
                    "dtype": value.dtype.str,
                    "shape": list(value.shape),
                    "offset": offset,
                    "nbytes": value.nbytes,
                }
            )
            chunks.append(value.tobytes())
            offset += value.nbytes
        data = b"".join(chunks)
        header = {
            "version": STORE_VERSION,
            "checksum": _sha256(data),
            "arrays": descriptors,
            "meta": dict(meta or {}),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        blob = (
            ARRAY_MAGIC
            + len(header_bytes).to_bytes(8, "little")
            + header_bytes
            + data
        )
        path = self.entry_path(namespace, key, _ARRAY_EXT)
        self._write_atomic(path, blob)
        if sanitize_enabled():
            self._verify_written_arrays(path)
        return path

    def get_arrays(
        self, namespace: str, key: str
    ) -> Optional[Dict[str, np.ndarray]]:
        """Zero-copy read-only views onto the stored arrays, or None.

        The file is memory-mapped; the checksum pass reads each page
        once through the map (no heap copy), and the returned arrays
        are read-only views whose lifetime keeps the map alive.
        """
        path = self.entry_path(namespace, key, _ARRAY_EXT)
        try:
            handle = path.open("rb")
        except OSError:
            self._miss()
            return None
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            handle.close()
            self._drop_corrupt(path)
            self._miss()
            return None
        views: Optional[Dict[str, np.ndarray]] = None
        try:
            views = self._decode_arrays(mapped)
        except (ValueError, KeyError, TypeError, IndexError):
            # Leave the except block before closing the map: the
            # traceback pins frame locals that still view the buffer.
            pass
        if views is None:
            mapped.close()
            handle.close()
            self._drop_corrupt(path)
            self._miss()
            return None
        handle.close()  # the mmap holds its own reference to the file
        self._hit(path, len(mapped))
        return views

    @staticmethod
    def _decode_arrays(mapped: mmap.mmap) -> Dict[str, np.ndarray]:
        """Parse + checksum an array entry; raises ValueError on damage."""
        if len(mapped) < len(ARRAY_MAGIC) + 8:
            raise ValueError("truncated entry")
        if mapped[: len(ARRAY_MAGIC)] != ARRAY_MAGIC:
            raise ValueError("bad magic")
        header_len = int.from_bytes(
            mapped[len(ARRAY_MAGIC) : len(ARRAY_MAGIC) + 8], "little"
        )
        data_start = len(ARRAY_MAGIC) + 8 + header_len
        if data_start > len(mapped):
            raise ValueError("truncated header")
        header = json.loads(
            bytes(mapped[len(ARRAY_MAGIC) + 8 : data_start]).decode("utf-8")
        )
        if header.get("version") != STORE_VERSION:
            raise ValueError(f"version {header.get('version')!r}")
        data = memoryview(mapped)[data_start:]
        if _sha256(data) != header["checksum"]:
            raise ValueError("checksum mismatch")
        views: Dict[str, np.ndarray] = {}
        for descriptor in header["arrays"]:
            shape = tuple(int(s) for s in descriptor["shape"])
            start = int(descriptor["offset"])
            nbytes = int(descriptor["nbytes"])
            if start + nbytes > len(data):
                raise ValueError("descriptor out of bounds")
            view: np.ndarray = np.frombuffer(
                data[start : start + nbytes],
                dtype=np.dtype(descriptor["dtype"]),
            ).reshape(shape)
            views[str(descriptor["name"])] = view
        return views

    # -- sanitizer write verification ----------------------------------
    def _verify_written_json(self, path: Path) -> None:
        """REPRO_SANITIZE: re-read + re-checksum the entry just written.

        Counters and the LRU mtime clock are left untouched — this is a
        tripwire, not a read.  A failure here is a hard error: the
        corrupt-as-miss policy exists for entries damaged *later*, not
        for writes that were wrong from the start.
        """
        raw = path.read_bytes()
        envelope = json.loads(raw)
        body = envelope["payload"]
        if (
            envelope.get("version") != STORE_VERSION
            or _sha256(body.encode("utf-8")) != envelope["checksum"]
        ):
            raise RuntimeError(
                f"REPRO_SANITIZE: store write verification failed for "
                f"{path} (checksum/version mismatch on read-back)"
            )
        json.loads(body)

    def _verify_written_arrays(self, path: Path) -> None:
        """REPRO_SANITIZE: decode + checksum the array entry on write."""
        with path.open("rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        error: Optional[str] = None
        try:
            self._decode_arrays(mapped)
        except (ValueError, KeyError, TypeError, IndexError) as exc:
            # Leave the except block before closing: the traceback pins
            # frame locals that still view the buffer (see get_arrays).
            error = str(exc)
        try:
            mapped.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if error is not None:
            raise RuntimeError(
                f"REPRO_SANITIZE: store write verification failed for "
                f"{path}: {error}"
            )

    # -- misc ----------------------------------------------------------
    def describe(self) -> str:
        """One-line hit/miss summary for CLI output."""
        c = self.counters
        return (
            f"cache {self.directory}: {c.hits} hits, {c.misses} misses, "
            f"{c.bytes_read} B read, {c.bytes_written} B written"
            + (f", {c.corrupt} corrupt dropped" if c.corrupt else "")
        )
