"""Constrained xi optimization via SQP (paper Eq. 8).

The paper solves::

    min  F = sum_K rho_K * (-log2(Delta_XK))
    s.t. sum_K xi_K = 1
    with Delta_XK = lambda_K * sigma_YL * sqrt(xi_K) + theta_K

with Octave's ``sqp``.  Here the same problem goes to
``scipy.optimize.minimize(method="SLSQP")`` — also a sequential
quadratic programming solver — with analytic gradients and per-layer
feasibility floors keeping every ``Delta_XK`` positive (the objective
is undefined otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np
from scipy import optimize as sciopt

from ..errors import OptimizationError
from ..analysis.profiler import LayerErrorProfile
from .objective import Objective

#: Global floor on any xi entry (shares cannot vanish entirely).
XI_FLOOR = 1e-6

#: Delta must clear this multiple of |theta| above zero at the floor.
_DELTA_MARGIN = 1e-9


@dataclass
class XiSolution:
    """Result of the Eq. 8 optimization."""

    xi: Dict[str, float]
    objective_value: float
    success: bool
    message: str
    num_iterations: int

    def as_array(self, names: List[str]) -> np.ndarray:
        return np.array([self.xi[name] for name in names])


def _feasibility_floor(
    lam: float, theta: float, sigma: float, name: str = "<unnamed>"
) -> float:
    """Smallest xi keeping ``lam*sigma*sqrt(xi) + theta`` positive.

    The raised :class:`OptimizationError` always names the offending
    layer — in a multi-layer failure the layer identity is the only
    debuggable signal.
    """
    if not (np.isfinite(lam) and np.isfinite(theta)):
        raise OptimizationError(
            f"layer {name!r} has non-finite profile "
            f"(lambda={lam!r}, theta={theta!r}); the regression fit is "
            "numerically broken"
        )
    if lam <= 0:
        raise OptimizationError(
            f"layer {name!r} has non-positive lambda {lam:.4g}; "
            "xi optimization requires a positive error slope"
        )
    if sigma <= 0:
        raise OptimizationError(
            f"xi optimization requires positive sigma, got {sigma!r} "
            f"(while flooring layer {name!r})"
        )
    if theta >= 0:
        return XI_FLOOR
    needed = ((-theta + _DELTA_MARGIN) / (lam * sigma)) ** 2
    return max(XI_FLOOR, float(needed))


def optimize_xi(
    objective: Objective,
    profiles: Mapping[str, LayerErrorProfile],
    sigma: float,
    max_iterations: int = 200,
    start: Optional[np.ndarray] = None,
    xi_floor: float = XI_FLOOR,
) -> XiSolution:
    """Solve Eq. 8 for the error-share vector xi.

    Layers with larger rho get smaller xi (hence smaller Delta, more
    bits are *saved* elsewhere): the optimizer trades precision between
    layers exactly as Table II shows for AlexNet.

    ``start`` (an explicit initial simplex point) and ``xi_floor`` (a
    raised global floor keeping iterates away from the ``sqrt(xi)``
    singularity) are the retry knobs of the resilience fallback chain
    (:func:`repro.resilience.solve_xi_with_fallback`).
    """
    names = [name for name in profiles if name in objective.rho]
    if set(names) != set(objective.rho):
        missing = set(objective.rho) - set(names)
        raise OptimizationError(
            f"objective references unprofiled layers: {sorted(missing)}"
        )
    count = len(names)
    if count == 0:
        raise OptimizationError("nothing to optimize: no layers")
    rho = np.array([objective.rho[name] for name in names])
    rho = rho / rho.sum()
    lam = np.array([profiles[name].lam for name in names])
    theta = np.array([profiles[name].theta for name in names])
    floors = np.array(
        [
            _feasibility_floor(
                profiles[name].lam, profiles[name].theta, sigma, name=name
            )
            for name in names
        ]
    )
    floors = np.maximum(floors, xi_floor)
    if floors.sum() >= 1.0:
        worst = sorted(zip(floors, names), reverse=True)[:3]
        offenders = ", ".join(f"{n}={f:.3g}" for f, n in worst)
        raise OptimizationError(
            "infeasible: per-layer floors exceed the unit budget "
            f"(largest: {offenders}); the profiling fit may be "
            "degenerate (large negative theta)"
        )

    log2 = np.log(2.0)

    def delta_of(xi: np.ndarray) -> np.ndarray:
        return lam * sigma * np.sqrt(xi) + theta

    def objective_fn(xi: np.ndarray) -> float:
        return float(-(rho * np.log2(delta_of(xi))).sum())

    def gradient(xi: np.ndarray) -> np.ndarray:
        delta = delta_of(xi)
        d_delta = lam * sigma / (2.0 * np.sqrt(xi))
        return -(rho * d_delta) / (delta * log2)

    if start is None:
        start = np.full(count, 1.0 / count)
    else:
        start = np.asarray(start, dtype=np.float64)
        if start.shape != (count,):
            raise OptimizationError(
                f"start point has shape {start.shape}; expected ({count},)"
            )
    start = np.maximum(start, floors)
    start = start / start.sum()
    result = sciopt.minimize(
        objective_fn,
        start,
        jac=gradient,
        method="SLSQP",
        bounds=[(float(f), 1.0) for f in floors],
        constraints=[{"type": "eq", "fun": lambda xi: xi.sum() - 1.0}],
        options={"maxiter": max_iterations, "ftol": 1e-12},
    )
    xi = np.clip(result.x, floors, 1.0)
    xi = xi / xi.sum()
    return XiSolution(
        xi={name: float(x) for name, x in zip(names, xi)},
        objective_value=objective_fn(xi),
        success=bool(result.success),
        message=str(result.message),
        num_iterations=int(result.get("nit", 0)),
    )


def equal_xi(names: List[str]) -> Dict[str, float]:
    """The equal scheme: ``xi_K = 1/L`` (paper's baseline Scheme 1)."""
    if not names:
        raise OptimizationError("equal_xi needs at least one layer")
    share = 1.0 / len(names)
    return {name: share for name in names}
