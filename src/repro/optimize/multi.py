"""Multi-objective exploration: trade-off frontiers between objectives.

The paper observes that optimizing for energy can cost bandwidth
(Fig. 4: "optimizing for energy will yield a bandwidth that is 5.6%
worse than the baseline") and notes designers may "formulate different
optimization criteria".  This module operationalizes that: sweep convex
blends of two objectives and keep the Pareto-optimal allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from ..analysis.profiler import LayerErrorProfile
from ..nn.statistics import LayerStats
from .allocator import AllocationResult, allocate_optimized
from .objective import Objective, blended_objective


@dataclass
class FrontierPoint:
    """One point of the bandwidth/energy trade-off frontier."""

    alpha: float
    result: AllocationResult
    cost_first: float
    cost_second: float


def objective_cost(
    result: AllocationResult, objective: Objective
) -> float:
    """Total weighted bits of an allocation under an objective."""
    return result.allocation.weighted_bits(objective.rho)


def tradeoff_frontier(
    first: Objective,
    second: Objective,
    profiles: Mapping[str, LayerErrorProfile],
    stats: Mapping[str, LayerStats],
    sigma: float,
    num_points: int = 9,
    ordered_names: Optional[List[str]] = None,
) -> List[FrontierPoint]:
    """Sweep alpha in [0, 1], returning the non-dominated points."""
    points: List[FrontierPoint] = []
    for alpha in np.linspace(0.0, 1.0, num_points):
        blend = blended_objective(first, second, float(alpha))
        result = allocate_optimized(
            blend, profiles, stats, sigma, ordered_names=ordered_names
        )
        points.append(
            FrontierPoint(
                alpha=float(alpha),
                result=result,
                cost_first=objective_cost(result, first),
                cost_second=objective_cost(result, second),
            )
        )
    return _non_dominated(points)


def _non_dominated(points: List[FrontierPoint]) -> List[FrontierPoint]:
    front = []
    for p in points:
        dominated = any(
            q.cost_first <= p.cost_first
            and q.cost_second <= p.cost_second
            and (q.cost_first < p.cost_first or q.cost_second < p.cost_second)
            for q in points
        )
        if not dominated:
            front.append(p)
    front.sort(key=lambda p: p.alpha)
    return front
