"""Alternative Eq. 8 solver: projected gradient descent on the simplex.

The SLSQP solver (:mod:`repro.optimize.sqp`) matches the paper's Octave
``sqp``; this independent solver exists to cross-check it.  The Eq. 8
objective is convex in ``xi`` on the feasible region (for ``theta >= 0``
it is a sum of ``-log`` terms of concave arguments), so two different
methods must agree — a disagreement flags a bug, and the test-suite
asserts the agreement.

The method is classical: gradient steps followed by Euclidean
projection onto the (floored) probability simplex.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..analysis.profiler import LayerErrorProfile
from ..errors import OptimizationError
from .objective import Objective
from .sqp import XiSolution, _feasibility_floor


def project_to_simplex(values: np.ndarray, floors: np.ndarray) -> np.ndarray:
    """Euclidean projection onto {x : sum x = 1, x >= floors}.

    Standard shift-and-clip: substitute ``y = x - floors`` and project
    onto the scaled simplex of mass ``1 - sum(floors)``.
    """
    if floors.sum() >= 1.0:
        raise OptimizationError("floors exceed the unit budget")
    mass = 1.0 - floors.sum()
    y = values - floors
    # Project y onto {y >= 0, sum y = mass} (Held et al. algorithm).
    sorted_y = np.sort(y)[::-1]
    cumulative = np.cumsum(sorted_y) - mass
    indices = np.arange(1, y.size + 1)
    candidates = sorted_y - cumulative / indices
    rho = np.nonzero(candidates > 0)[0][-1]
    tau = cumulative[rho] / (rho + 1.0)
    projected = np.maximum(y - tau, 0.0)
    return projected + floors


def optimize_xi_projected(
    objective: Objective,
    profiles: Mapping[str, LayerErrorProfile],
    sigma: float,
    learning_rate: float = 0.05,
    max_iterations: int = 2000,
    tolerance: float = 1e-10,
) -> XiSolution:
    """Solve Eq. 8 by projected gradient descent (cross-check solver)."""
    names = [name for name in profiles if name in objective.rho]
    if set(names) != set(objective.rho):
        missing = set(objective.rho) - set(names)
        raise OptimizationError(
            f"objective references unprofiled layers: {sorted(missing)}"
        )
    rho = np.array([objective.rho[name] for name in names])
    rho = rho / rho.sum()
    lam = np.array([profiles[name].lam for name in names])
    theta = np.array([profiles[name].theta for name in names])
    floors = np.array(
        [
            _feasibility_floor(
                profiles[name].lam, profiles[name].theta, sigma, name=name
            )
            for name in names
        ]
    )
    if floors.sum() >= 1.0:
        raise OptimizationError(
            "infeasible: per-layer floors exceed the unit budget"
        )

    log2 = np.log(2.0)

    def objective_fn(xi: np.ndarray) -> float:
        return float(-(rho * np.log2(lam * sigma * np.sqrt(xi) + theta)).sum())

    def gradient(xi: np.ndarray) -> np.ndarray:
        delta = lam * sigma * np.sqrt(xi) + theta
        d_delta = lam * sigma / (2.0 * np.sqrt(xi))
        return -(rho * d_delta) / (delta * log2)

    xi = project_to_simplex(np.full(len(names), 1.0 / len(names)), floors)
    value = objective_fn(xi)
    iterations = 0
    step = learning_rate
    for iterations in range(1, max_iterations + 1):
        # Backtracking (Armijo-style) along the projection arc: the
        # gradient blows up as 1/sqrt(xi) near the floors, and an
        # unconditionally accepted step can fling the iterate into a
        # simplex corner it never escapes.  Monotone descent plus the
        # convexity of Eq. 8 guarantees convergence to the optimum.
        grad = gradient(xi)
        trial = step
        while True:
            candidate = project_to_simplex(xi - trial * grad, floors)
            new_value = objective_fn(candidate)
            if new_value <= value or trial < 1e-14:
                break
            trial *= 0.5
        if new_value > value:
            break  # no descent step left: converged
        converged = abs(value - new_value) < tolerance and iterations > 10
        xi, value = candidate, new_value
        if converged:
            break
        step = min(trial * 2.0, learning_rate)
    return XiSolution(
        xi={name: float(x) for name, x in zip(names, xi)},
        objective_value=value,
        success=True,
        message=f"projected gradient converged in {iterations} iterations",
        num_iterations=iterations,
    )
