"""Objective definitions for bitwidth optimization (paper Sec. V-D).

An objective is a vector of per-layer importance coefficients
``rho_K``: "the coefficient that gives the relative importance of each
layer K in the objective".  The paper demonstrates two:

* ``#Input`` — input elements per layer: minimizing total activation
  read bandwidth.
* ``#MAC`` — MAC operations per layer: minimizing total MAC input bits,
  hence MAC energy.

Any positive weighting defines a valid objective ("designers can
formulate different optimization criteria using our framework").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import OptimizationError
from ..nn.statistics import LayerStats


@dataclass(frozen=True)
class Objective:
    """A named per-layer weighting ``rho``."""

    name: str
    rho: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.rho:
            raise OptimizationError("objective needs at least one layer")
        if any(weight < 0 for weight in self.rho.values()):
            raise OptimizationError("objective weights must be non-negative")
        if all(weight == 0 for weight in self.rho.values()):
            raise OptimizationError("objective weights cannot all be zero")

    @property
    def total_weight(self) -> float:
        return float(sum(self.rho.values()))

    def normalized(self) -> "Objective":
        """Weights scaled to sum to 1 (invariant for the optimizer)."""
        total = self.total_weight
        return Objective(
            self.name, {k: v / total for k, v in self.rho.items()}
        )


def input_bandwidth_objective(stats: Mapping[str, LayerStats]) -> Objective:
    """rho_K = #Input_K — Table II's ``Opt_for_#Input``."""
    return Objective(
        "input", {name: float(s.num_inputs) for name, s in stats.items()}
    )


def mac_energy_objective(stats: Mapping[str, LayerStats]) -> Objective:
    """rho_K = #MAC_K — Table II's ``Opt_for_#MAC``."""
    return Objective(
        "mac", {name: float(s.num_macs) for name, s in stats.items()}
    )


def blended_objective(
    first: Objective, second: Objective, alpha: float
) -> Objective:
    """Convex blend ``alpha * first + (1-alpha) * second`` (both normalized).

    Sweeping ``alpha`` traces the bandwidth/energy trade-off frontier.
    """
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1]; got {alpha}")
    a = first.normalized()
    b = second.normalized()
    if set(a.rho) != set(b.rho):
        raise OptimizationError("blended objectives must cover the same layers")
    rho = {
        name: alpha * a.rho[name] + (1.0 - alpha) * b.rho[name]
        for name in a.rho
    }
    return Objective(f"blend({first.name},{second.name},{alpha:.2f})", rho)


def resolve_objective(
    objective, stats: Mapping[str, LayerStats]
) -> Objective:
    """Accept an Objective, the names "input"/"mac", or a rho mapping."""
    if isinstance(objective, Objective):
        return objective
    if objective == "input":
        return input_bandwidth_objective(stats)
    if objective == "mac":
        return mac_energy_objective(stats)
    if isinstance(objective, Mapping):
        return Objective("custom", dict(objective))
    raise OptimizationError(
        f"cannot interpret objective {objective!r}; pass an Objective, "
        '"input", "mac", or a mapping of layer -> weight'
    )
