"""From a sigma budget and an objective to concrete bitwidths.

The last mile of the paper's pipeline (Sec. V-D): solve Eq. 8 for xi,
evaluate Eq. 7 for each layer's ``Delta_XK``, convert to fraction bits,
combine with measured integer bits, and package as a
:class:`~repro.quant.BitwidthAllocation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from ..analysis.profiler import LayerErrorProfile
from ..analysis.sigma_search import deltas_for_sigma
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation
from ..telemetry.session import Telemetry
from .objective import Objective, resolve_objective
from .sqp import XiSolution, equal_xi, optimize_xi


@dataclass
class AllocationResult:
    """An optimized allocation with its provenance."""

    allocation: BitwidthAllocation
    xi: Dict[str, float]
    deltas: Dict[str, float]
    sigma: float
    objective: Objective
    solution: Optional[XiSolution] = None
    #: True when the xi came from a fallback path (equal-xi degradation
    #: after solver exhaustion), not the primary Eq. 8 solver.
    degraded: bool = False
    #: Provenance of the resilient solve (attempt count, failures); a
    #: :class:`repro.resilience.FallbackReport` when ``fallback`` was
    #: requested, else None.
    fallback: Optional[object] = None

    def bitwidths(self) -> Dict[str, int]:
        return self.allocation.bitwidths()

    def effective_bitwidth(self, rho: Mapping[str, float]) -> float:
        return self.allocation.effective_bitwidth(rho)


def allocate_optimized(
    objective,
    profiles: Mapping[str, LayerErrorProfile],
    stats: Mapping[str, LayerStats],
    sigma: float,
    ordered_names: Optional[List[str]] = None,
    fallback: bool = False,
    strict: bool = False,
    seed: int = 0,
    solver: Optional[Callable[..., XiSolution]] = None,
    telemetry: Optional[Telemetry] = None,
) -> AllocationResult:
    """Optimize xi for an objective and emit the bitwidth allocation.

    With ``fallback=True`` the solve goes through the resilience chain
    (multi-start retries, then equal-xi degradation tagged
    ``degraded=True``; ``strict=True`` raises
    :class:`~repro.errors.RetryExhaustedError` instead of degrading).
    ``solver`` overrides the Eq. 8 solver — the chaos harness's hook.
    """
    session = Telemetry.create(telemetry)
    names = list(ordered_names or profiles)
    objective = resolve_objective(objective, stats)
    report = None
    with session.tracer.span(
        "allocator.allocate",
        objective=objective.name,
        sigma=float(sigma),
        fallback=fallback,
    ):
        if fallback:
            from ..resilience.fallback import solve_xi_with_fallback

            solution, report = solve_xi_with_fallback(
                objective, profiles, sigma, strict=strict, seed=seed,
                solver=solver, telemetry=session,
            )
        else:
            with session.tracer.span(
                "solver.solve", objective=objective.name, sigma=float(sigma)
            ):
                solution = (solver or optimize_xi)(objective, profiles, sigma)
        deltas = deltas_for_sigma(profiles, sigma, xi=solution.xi)
        allocation = BitwidthAllocation.from_deltas(
            [stats[name] for name in names], deltas
        )
    return AllocationResult(
        allocation=allocation,
        xi=solution.xi,
        deltas=deltas,
        sigma=sigma,
        objective=objective,
        solution=solution,
        degraded=bool(report.degraded) if report else False,
        fallback=report,
    )


def allocate_equal_scheme(
    profiles: Mapping[str, LayerErrorProfile],
    stats: Mapping[str, LayerStats],
    sigma: float,
    ordered_names: Optional[List[str]] = None,
) -> AllocationResult:
    """The paper's equal scheme (xi_K = 1/L) as an allocation."""
    names = list(ordered_names or profiles)
    xi = equal_xi(names)
    deltas = deltas_for_sigma(profiles, sigma, xi=xi)
    allocation = BitwidthAllocation.from_deltas(
        [stats[name] for name in names], deltas
    )
    return AllocationResult(
        allocation=allocation,
        xi=xi,
        deltas=deltas,
        sigma=sigma,
        objective=Objective("equal", {name: 1.0 for name in names}),
        solution=None,
    )
