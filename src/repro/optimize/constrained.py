"""Constrained bitwidth optimization: minimize one cost under a cap on
another.

The paper closes with "designers can formulate different optimization
criteria using our framework"; the most common real formulation is not
a weighted blend but a *budgeted* trade: minimize MAC energy subject to
the memory interface's bandwidth ceiling (or vice versa).  Both costs
are smooth functions of xi through Eq. 7, so the same SLSQP machinery
solves it with one extra inequality constraint:

    min  sum_K rho_K   * (-log2 Delta_K(xi))            (objective)
    s.t. sum_K cap_K   * (-log2 Delta_K(xi)) <= budget  (cap)
         sum_K xi_K = 1,  xi_K >= floor_K

Budgets are stated in the cap objective's *weighted bits* (same units
as ``BitwidthAllocation.weighted_bits``), continuous before the ceil()
discretization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np
from scipy import optimize as sciopt

from ..analysis.profiler import LayerErrorProfile
from ..errors import OptimizationError
from .objective import Objective
from .sqp import XiSolution, _feasibility_floor


@dataclass
class ConstrainedSolution:
    """Result of the budgeted optimization."""

    xi: Dict[str, float]
    objective_value: float
    cap_value: float
    cap_budget: float
    success: bool
    message: str

    @property
    def cap_satisfied(self) -> bool:
        # Additive tolerance: weighted bits may legitimately be negative
        # (a layer with Delta > 1 contributes -log2(Delta) < 0), so a
        # multiplicative margin would flip direction.
        tolerance = 1e-6 * max(1.0, abs(self.cap_budget))
        return self.cap_value <= self.cap_budget + tolerance

    def as_xi_solution(self) -> XiSolution:
        return XiSolution(
            xi=self.xi,
            objective_value=self.objective_value,
            success=self.success,
            message=self.message,
            num_iterations=0,
        )


def optimize_xi_constrained(
    objective: Objective,
    cap: Objective,
    cap_budget: float,
    profiles: Mapping[str, LayerErrorProfile],
    sigma: float,
    max_iterations: int = 300,
) -> ConstrainedSolution:
    """Minimize ``objective`` subject to ``cap``'s weighted bits <= budget.

    Raises :class:`OptimizationError` when the budget is infeasible
    (tighter than the cap-optimal solution can reach).
    """
    names = [name for name in profiles if name in objective.rho]
    if set(names) != set(objective.rho) or set(names) != set(cap.rho):
        raise OptimizationError(
            "objective, cap, and profiles must cover the same layers"
        )
    # Normalize both weightings so SLSQP works on O(1) quantities; the
    # reported values are rescaled back to the caller's units.
    rho_raw = np.array([objective.rho[name] for name in names], dtype=float)
    cap_raw = np.array([cap.rho[name] for name in names], dtype=float)
    rho_scale = float(rho_raw.sum())
    cap_scale = float(cap_raw.sum())
    if rho_scale <= 0 or cap_scale <= 0:
        raise OptimizationError("objective and cap need positive weights")
    rho = rho_raw / rho_scale
    cap_rho = cap_raw / cap_scale
    cap_budget_scaled = cap_budget / cap_scale
    lam = np.array([profiles[name].lam for name in names])
    theta = np.array([profiles[name].theta for name in names])
    floors = np.array(
        [
            _feasibility_floor(
                profiles[name].lam, profiles[name].theta, sigma, name=name
            )
            for name in names
        ]
    )
    if floors.sum() >= 1.0:
        raise OptimizationError("infeasible: floors exceed the unit budget")

    log2 = np.log(2.0)

    def delta_of(xi):
        return lam * sigma * np.sqrt(xi) + theta

    def weighted_bits(xi, weights):
        return float((weights * -np.log2(delta_of(xi))).sum())

    def objective_fn(xi):
        return weighted_bits(xi, rho)

    def objective_grad(xi):
        delta = delta_of(xi)
        d_delta = lam * sigma / (2.0 * np.sqrt(xi))
        return -(rho * d_delta) / (delta * log2)

    def cap_fn(xi):
        # SLSQP convention: constraint >= 0.
        return cap_budget_scaled - weighted_bits(xi, cap_rho)

    def cap_grad(xi):
        delta = delta_of(xi)
        d_delta = lam * sigma / (2.0 * np.sqrt(xi))
        return (cap_rho * d_delta) / (delta * log2)

    # Feasibility check: the cap-optimal point is the best achievable
    # cap value; if even that exceeds the budget, no xi satisfies it.
    from .sqp import optimize_xi

    cap_opt = optimize_xi(cap, profiles, sigma)
    best_cap = weighted_bits(
        np.array([cap_opt.xi[name] for name in names]), cap_rho
    )
    if best_cap > cap_budget_scaled:
        raise OptimizationError(
            f"cap budget {cap_budget:.4g} is infeasible; the best "
            f"achievable {cap.name} cost at this sigma is "
            f"{best_cap * cap_scale:.4g}"
        )

    start = np.array([cap_opt.xi[name] for name in names])
    start = np.maximum(start, floors)
    start = start / start.sum()
    result = sciopt.minimize(
        objective_fn,
        start,
        jac=objective_grad,
        method="SLSQP",
        bounds=[(float(f), 1.0) for f in floors],
        constraints=[
            {"type": "eq", "fun": lambda xi: xi.sum() - 1.0},
            {"type": "ineq", "fun": cap_fn, "jac": cap_grad},
        ],
        options={"maxiter": max_iterations, "ftol": 1e-12},
    )
    xi = np.clip(result.x, floors, 1.0)
    xi = xi / xi.sum()
    return ConstrainedSolution(
        xi={name: float(x) for name, x in zip(names, xi)},
        objective_value=objective_fn(xi) * rho_scale,
        cap_value=weighted_bits(xi, cap_rho) * cap_scale,
        cap_budget=cap_budget,
        success=bool(result.success),
        message=str(result.message),
    )
