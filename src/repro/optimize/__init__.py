"""Multi-objective bitwidth optimization (paper Sec. V-D, Eq. 8)."""

from .allocator import (
    AllocationResult,
    allocate_equal_scheme,
    allocate_optimized,
)
from .constrained import ConstrainedSolution, optimize_xi_constrained
from .multi import FrontierPoint, objective_cost, tradeoff_frontier
from .objective import (
    Objective,
    blended_objective,
    input_bandwidth_objective,
    mac_energy_objective,
    resolve_objective,
)
from .projected import optimize_xi_projected, project_to_simplex
from .sqp import XiSolution, equal_xi, optimize_xi

__all__ = [
    "AllocationResult",
    "ConstrainedSolution",
    "FrontierPoint",
    "Objective",
    "XiSolution",
    "allocate_equal_scheme",
    "allocate_optimized",
    "blended_objective",
    "equal_xi",
    "input_bandwidth_objective",
    "mac_energy_objective",
    "objective_cost",
    "optimize_xi",
    "optimize_xi_constrained",
    "optimize_xi_projected",
    "project_to_simplex",
    "resolve_objective",
    "tradeoff_frontier",
]
