"""The vectorized, optionally parallel injection-campaign runner.

:class:`InjectionEngine` executes the paper's Sec. V-A measurement —
for every analyzed layer, inject ``U[-delta, delta]`` noise at each
grid point x repeat and accumulate the squared output error — with
three structural speedups over the naive loop:

1. **Replay plans** (:meth:`Network.replay_plan`): the downstream
   closure of each start layer is computed once, not per trial.
2. **Multi-trial batching** (:meth:`Network.forward_from_many`):
   ``trial_batch`` noise draws stack along the batch axis and replay in
   one pass through bitwise-faithful fast kernels
   (:mod:`repro.engine.kernels`), so R replays share each layer's
   im2col/GEMM setup.
3. **A worker pool across layers** (thread by default, shared-memory
   processes optionally) — see :mod:`repro.engine.parallel`.

Determinism contract: every trial owns a coordinate
``(layer_position, batch, delta, repeat)`` and draws noise from its own
:func:`~repro.engine.rng.trial_rng` stream; per-trial squared errors
land in a preallocated cell array and are reduced in a fixed order.
Fitted lambda/theta are therefore **bit-identical** for any ``jobs``,
``backend``, ``trial_batch``, or traversal order.
"""

from __future__ import annotations

import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..cache import ResultCache, array_digest, make_key, network_digest
from ..config import ParallelSettings
from ..errors import ProfilingError, ReproError, RetryExhaustedError, TransientError
from ..nn.graph import ActivationCache, Network
from ..resilience.guards import Diagnostic, check_finite_array, enforce
from ..sanitize import fp_guard
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.session import Telemetry
from ..telemetry.spans import NULL_TRACER, Span, Tracer
from .alloc import tune_allocator
from .kernels import KernelScratch, fast_forward, make_forward_fn
from .rng import trial_rng
from .timing import StageTimings


@contextmanager
def _observed_stage(
    telemetry: Telemetry,
    timings: StageTimings,
    name: str,
    **attributes: object,
) -> Iterator[Optional[Span]]:
    """One engine stage: timing span + bus lifecycle + resource samples.

    Emits ``engine.<name>`` running/done (or failed) on the session's
    event bus and brackets the stage with resource samples; both are
    no-ops when the bus/profiler are the null instances.
    """
    bus = telemetry.event_bus
    stage_name = f"engine.{name}"
    bus.stage("running", stage_name)
    try:
        with timings.stage(name, **attributes) as span:
            with telemetry.resources.measure(stage_name, span=span):
                yield span
    except BaseException as exc:
        bus.stage("failed", stage_name, error_class=type(exc).__name__)
        raise
    bus.stage("done", stage_name)


def enforce_finite_trial(
    perturbed: np.ndarray, name: str, delta: float
) -> None:
    """Raise the standard structured error for a non-finite trial.

    Shared by the engine and the legacy profiler loop so both surfaces
    report numerical blowups identically.
    """
    enforce(
        check_finite_array(perturbed, "profiling", layer=name)
        or [
            Diagnostic(
                stage="profiling",
                code="non_finite",
                message=(
                    "squared-error sum overflowed "
                    f"at delta={delta:.4g}"
                ),
                layer=name,
                value=float(delta),
            )
        ],
        strict=True,
        context=f"error injection at layer {name!r}, delta={delta:.4g}",
    )


@dataclass
class LayerCells:
    """Per-trial squared-error sums for one start layer.

    ``cells[b, j, r]`` is the squared-error sum of the trial at batch
    ``b``, delta index ``j``, repeat ``r``; ``counts[j]`` the number of
    output elements accumulated at delta index ``j``.
    """

    name: str
    cells: np.ndarray
    counts: np.ndarray


def run_layer_campaign(
    network: Network,
    caches: Sequence[ActivationCache],
    *,
    name: str,
    layer_position: int,
    grid: np.ndarray,
    num_repeats: int,
    seed: int,
    trial_batch: int,
    fast_kernels: bool,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    parent_id: Optional[str] = None,
) -> LayerCells:
    """The full delta-grid injection campaign for one start layer.

    Pure function of its arguments (each trial's RNG stream is derived
    from its coordinate), so it can run in any worker, in any order,
    and produce the same bits.  ``tracer``/``metrics``/``parent_id``
    only observe the run (``engine.layer`` and ``engine.injection_batch``
    spans, trial and kernel-dispatch counters); they never touch the
    trial math, so results stay bit-identical with telemetry on or off.
    """
    tracer = tracer or NULL_TRACER
    grid = np.asarray(grid, dtype=np.float64)
    num_deltas = len(grid)
    # One scratch per campaign: every replay chunk rewrites the same
    # per-layer buffers, which kills allocator churn on the hot path.
    scratch = KernelScratch() if fast_kernels else None
    output = network.output_name
    start_input = network[name].inputs[0]
    tiny = np.finfo(np.float64).tiny
    cells = np.zeros((len(caches), num_deltas, num_repeats))
    counts = np.zeros(num_deltas)
    coordinates = [
        (j, r) for j in range(num_deltas) for r in range(num_repeats)
    ]
    dispatches = 0
    # Under REPRO_SANITIZE=1 the whole injection campaign runs with FP
    # overflow/invalid/divide trapped; errstate never changes results,
    # so clean runs stay bit-identical with the guard on or off.
    with fp_guard(), tracer.span(
        "engine.layer",
        parent_id=parent_id,
        layer=name,
        layer_position=layer_position,
        num_deltas=num_deltas,
        num_repeats=num_repeats,
        trial_batch=trial_batch,
        fast_kernels=fast_kernels,
    ) as layer_span:
        for batch_index, cache in enumerate(caches):
            with tracer.span(
                "engine.injection_batch", layer=name, batch=batch_index
            ) as batch_span:
                source = cache[start_input]
                reference = cache[output]
                # Exact zeros stay exact under any fixed-point format
                # (Fig. 1), so they receive no noise; the mask depends
                # only on the clean input and is shared across all of
                # this batch's trials.
                zero_mask = np.abs(source) < tiny
                mask_zeros = bool(zero_mask.any())
                for chunk_start in range(0, len(coordinates), trial_batch):
                    chunk = coordinates[chunk_start : chunk_start + trial_batch]
                    perturbed_inputs: List[np.ndarray] = []
                    for j, r in chunk:
                        delta = float(grid[j])
                        rng = trial_rng(
                            seed, layer_position, batch_index, j, r
                        )
                        noise = rng.uniform(-delta, delta, size=source.shape)
                        if mask_zeros:
                            noise[zero_mask] = 0.0
                        perturbed_inputs.append(source + noise)
                    taps = [
                        (lambda value: (lambda _x: value))(p)
                        for p in perturbed_inputs
                    ]
                    # trial_groups tells the kernels how many trials the
                    # batch axis stacks, so each GEMM runs at unstacked
                    # shapes and the result cannot depend on the
                    # trial_batch setting.
                    forward_fn = (
                        make_forward_fn(scratch, trial_groups=len(chunk))
                        if fast_kernels
                        else None
                    )
                    outputs = network.forward_from_many(
                        cache, name, taps, forward_fn=forward_fn
                    )
                    dispatches += 1
                    for position, (j, r) in enumerate(chunk):
                        err = outputs[position] - reference
                        sq_sum = float((err * err).sum())
                        if not np.isfinite(sq_sum):
                            enforce_finite_trial(
                                outputs[position], name, float(grid[j])
                            )
                        cells[batch_index, j, r] = sq_sum
                        counts[j] += err.size
                batch_span.incr("trials", len(coordinates))
        layer_span.incr("trials", len(coordinates) * len(caches))
        layer_span.incr("dispatches", dispatches)
    if metrics is not None:
        metrics.counter("repro_trials_injected_total").inc(
            len(coordinates) * len(caches)
        )
        kernel_path = "fast" if fast_kernels else "legacy"
        metrics.counter(
            f"repro_kernel_{kernel_path}_dispatch_total"
        ).inc(dispatches)
        metrics.histogram("repro_layer_campaign_seconds").observe(
            layer_span.duration
        )
    return LayerCells(name=name, cells=cells, counts=counts)


@dataclass
class CampaignResult:
    """Reduced campaign output plus instrumentation."""

    #: Fixed-order reduced squared-error sums per layer, shape (D,).
    sq_sums: Dict[str, np.ndarray]
    #: Accumulated output-element counts per layer, shape (D,).
    counts: Dict[str, np.ndarray]
    num_images: int
    timings: StageTimings = field(default_factory=StageTimings)
    #: Fraction of total network MACs each layer's replay recomputes.
    replay_fractions: Dict[str, float] = field(default_factory=dict)
    jobs: int = 1


class InjectionEngine:
    """Runs injection campaigns with batching and worker pools."""

    def __init__(
        self,
        network: Network,
        parallel: Optional[ParallelSettings] = None,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.network = network
        self.parallel = parallel or ParallelSettings()
        self.telemetry = Telemetry.create(telemetry)
        #: Persistent result cache for the reference stage: clean
        #: activation caches keyed by (network, batch images).  Restored
        #: entries are mmap'd read-only views — no materialized copies.
        self.cache = cache
        if self.parallel.tune_allocator:
            tune_allocator()

    # ------------------------------------------------------------------
    def run(
        self,
        images: np.ndarray,
        grids: Dict[str, np.ndarray],
        num_repeats: int,
        seed: int,
        batch_size: int = 32,
        progress: bool = False,
    ) -> CampaignResult:
        """Execute the campaign for every layer in ``grids``."""
        names = list(grids)
        telemetry = self.telemetry
        timings = StageTimings(
            tracer=telemetry.tracer if telemetry.enabled else None
        )
        settings = self.parallel
        # The stateless variant allocates fresh outputs per call: the
        # reference activations live in the caches for the whole
        # campaign, so they must never alias a reused scratch buffer.
        forward_fn = fast_forward if settings.fast_kernels else None
        positions = {
            layer.name: index
            for index, layer in enumerate(self.network.layers)
        }
        with _observed_stage(telemetry, timings, "reference"):
            caches = self._reference_caches(images, batch_size, forward_fn)
        with _observed_stage(telemetry, timings, "plan"):
            for name in names:
                self.network.replay_plan(name)
            replay_fractions = self._replay_fractions(names)
        tasks = [
            dict(
                name=name,
                layer_position=positions[name],
                grid=np.asarray(grids[name], dtype=np.float64),
                num_repeats=num_repeats,
                seed=seed,
                trial_batch=settings.trial_batch,
                fast_kernels=settings.fast_kernels,
            )
            for name in names
        ]
        with _observed_stage(
            telemetry,
            timings,
            "replay",
            jobs=settings.jobs,
            backend=settings.backend,
            num_layers=len(names),
        ) as replay_span:
            replay_id = replay_span.span_id if replay_span else None
            if settings.jobs == 1:
                results = [
                    self._run_serial_task(caches, task, progress)
                    for task in tasks
                ]
            elif settings.backend == "process":
                results = self._run_process_pool(caches, tasks, replay_id)
            else:
                results = self._run_thread_pool(caches, tasks, replay_id)
        with _observed_stage(telemetry, timings, "reduce"):
            sq_sums: Dict[str, np.ndarray] = {}
            counts: Dict[str, np.ndarray] = {}
            for task, layer_cells in zip(tasks, results):
                name = task["name"]
                cells = layer_cells.cells
                num_deltas = cells.shape[1]
                totals = np.zeros(num_deltas)
                # Fixed reduction order (batches outer, repeats inner)
                # keeps float addition identical to the serial loop for
                # every worker count and chunking.
                for j in range(num_deltas):
                    total = 0.0
                    for b in range(cells.shape[0]):
                        for r in range(cells.shape[2]):
                            total += cells[b, j, r]
                    totals[j] = total
                sq_sums[name] = totals
                counts[name] = layer_cells.counts.copy()
        return CampaignResult(
            sq_sums=sq_sums,
            counts=counts,
            num_images=int(images.shape[0]),
            timings=timings,
            replay_fractions=replay_fractions,
            jobs=settings.jobs,
        )

    # ------------------------------------------------------------------
    def _reference_caches(
        self,
        images: np.ndarray,
        batch_size: int,
        forward_fn: Optional[Callable[..., Any]],
    ) -> List[ActivationCache]:
        """Clean per-batch activation caches, persisted when caching.

        A batch's activations are a pure function of (network bits,
        batch images) — the fast kernels are bitwise-faithful, so the
        kernel path stays out of the key.  Cache hits return read-only
        mmap views; downstream replay only reads reference activations,
        so zero-copy restore is safe.
        """
        batches = [
            images[start : start + batch_size]
            for start in range(0, images.shape[0], batch_size)
        ]
        if self.cache is None:
            return [
                self.network.run_all(batch, forward_fn=forward_fn)
                for batch in batches
            ]
        net_digest = network_digest(self.network)
        caches: List[ActivationCache] = []
        for batch in batches:
            key = make_key(
                {
                    "kind": "activations",
                    "network": net_digest,
                    "images": array_digest(batch),
                }
            )
            entry = self.cache.get_arrays("activations", key)
            if entry is not None:
                caches.append(ActivationCache(dict(entry)))
                continue
            cache = self.network.run_all(batch, forward_fn=forward_fn)
            self.cache.put_arrays(
                "activations",
                key,
                {name: cache[name] for name in cache.names()},
            )
            caches.append(cache)
        return caches

    def _replay_fractions(self, names: Sequence[str]) -> Dict[str, float]:
        from ..nn.graphutils import replay_cost_fraction

        fractions: Dict[str, float] = {}
        for name in names:
            try:
                fractions[name] = replay_cost_fraction(self.network, name)
            except ReproError:  # networks with no MAC work
                pass
        return fractions

    def _run_serial_task(
        self,
        caches: Sequence[ActivationCache],
        task: Dict[str, Any],
        progress: bool,
    ) -> LayerCells:
        # Same thread as the replay span, so the thread-local span
        # stack parents the layer span without an explicit parent_id.
        result = run_layer_campaign(
            self.network,
            caches,
            tracer=self.telemetry.tracer,
            metrics=self.telemetry.metrics,
            **task,
        )
        if progress:  # pragma: no cover - console nicety
            print(f"  profiled layer {task['name']}")
        return result

    # ------------------------------------------------------------------
    def _collect(
        self,
        tasks: Sequence[Dict[str, Any]],
        submit: Callable[[Dict[str, Any]], Any],
    ) -> List[Any]:
        """Gather results in task order, with transient retries.

        ``submit(task)`` returns a future.  All tasks launch up front;
        a task failing with :class:`TransientError` is resubmitted up
        to ``transient_retries`` times (the resilience layer's retry
        semantics), any other failure aborts the campaign as a
        :class:`ProfilingError` naming the layer, original chained.
        """
        retries = self.parallel.transient_retries
        metrics = self.telemetry.metrics
        bus = self.telemetry.event_bus
        depth = metrics.gauge("repro_worker_queue_depth")
        futures = [submit(task) for task in tasks]
        for task in tasks:
            bus.stage("queued", f"engine.layer/{task['name']}")
        depth.set(len(futures))
        results: List[Any] = []
        for task, future in zip(tasks, futures):
            name = task["name"]
            stage_name = f"engine.layer/{name}"
            failures: List[str] = []
            while True:
                try:
                    results.append(future.result())
                    depth.dec()
                    bus.stage(
                        "done", stage_name, retries=len(failures)
                    )
                    break
                except TransientError as exc:
                    metrics.counter("repro_engine_retries_total").inc()
                    failures.append(
                        f"attempt {len(failures) + 1}: {exc}"
                    )
                    if len(failures) > retries:
                        bus.stage(
                            "failed",
                            stage_name,
                            retries=len(failures),
                            error_class="RetryExhaustedError",
                        )
                        raise RetryExhaustedError(
                            f"injection campaign for layer {name!r} failed "
                            f"{len(failures)} times; last error: "
                            f"{failures[-1]}",
                            attempts=failures,
                        ) from exc
                    future = submit(task)
                except ReproError as exc:
                    bus.stage(
                        "failed",
                        stage_name,
                        retries=len(failures),
                        error_class=type(exc).__name__,
                    )
                    raise
                except BaseException as exc:
                    bus.stage(
                        "failed",
                        stage_name,
                        retries=len(failures),
                        error_class=type(exc).__name__,
                    )
                    raise ProfilingError(
                        f"injection worker for layer {name!r} crashed: "
                        f"{exc!r}"
                    ) from exc
        return results

    def _effective_workers(self) -> int:
        """``jobs`` capped at the cores actually available to us.

        Oversubscribing a smaller CPU quota only adds contention, and
        results are bit-identical for any worker count, so the cap is
        free; ``jobs`` is an upper bound on concurrency, not a demand.
        """
        import os

        if hasattr(os, "sched_getaffinity"):
            available = len(os.sched_getaffinity(0))
        else:  # pragma: no cover - non-Linux
            available = os.cpu_count() or 1
        return max(1, min(self.parallel.jobs, available))

    def _run_thread_pool(
        self,
        caches: Sequence[ActivationCache],
        tasks: Sequence[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> List[LayerCells]:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=self._effective_workers(),
            thread_name_prefix="repro-engine",
        ) as pool:

            def submit(task: Dict[str, Any]) -> Any:
                # Pool threads start with an empty span stack, so the
                # replay span's id is threaded through explicitly.
                return pool.submit(
                    run_layer_campaign,
                    self.network,
                    caches,
                    tracer=self.telemetry.tracer,
                    metrics=self.telemetry.metrics,
                    parent_id=parent_id,
                    **task,
                )

            return self._collect(tasks, submit)

    def _run_process_pool(
        self,
        caches: Sequence[ActivationCache],
        tasks: Sequence[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> List[LayerCells]:
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        from .parallel import (
            SharedCaches,
            _process_worker_init,
            _process_worker_run,
        )

        # The network pickle rides in the shared segment next to the
        # caches: W spawned workers map one copy instead of each
        # receiving its own serialized copy through initargs.
        shared = SharedCaches.create(
            caches, blobs={"network": pickle.dumps(self.network)}
        )
        try:
            with ProcessPoolExecutor(
                max_workers=self._effective_workers(),
                mp_context=get_context("spawn"),
                initializer=_process_worker_init,
                initargs=(
                    shared.shm_name,
                    shared.descriptors,
                    shared.blob_descriptors,
                ),
            ) as pool:

                def submit(task: Dict[str, Any]) -> Any:
                    return pool.submit(
                        _process_worker_run,
                        pickle.dumps(task),
                        self.telemetry.enabled,
                    )

                raw = self._collect(tasks, submit)
        finally:
            shared.release()
        results: List[LayerCells] = []
        for item in raw:
            cells, spans, snapshot = (
                item
                if isinstance(item, tuple)
                else pickle.loads(item)
            )
            if spans:
                # Worker-root spans (parent None in the worker's local
                # tracer) re-parent under the replay span; perf_counter
                # is system-wide monotonic on Linux, so starts stay
                # comparable for the merge sort.
                self.telemetry.tracer.absorb(spans, parent_id=parent_id)
            if snapshot:
                self.telemetry.metrics.merge(snapshot)
            results.append(cells)
        return results
