"""Bitwise-faithful fast kernels for replay-heavy layers.

The injection campaign replays the same downstream closures tens of
thousands of times, so the per-pass constant factors of the substrate
layers dominate end-to-end profiling time.  This module provides
drop-in replacements for the hottest layer forwards that compute the
**exact same float64 results, bit for bit** — they reorganize memory
traffic, never arithmetic:

* ``Conv2D`` (dense and grouped): the stock path materializes sliding
  windows twice (``extract_windows`` copy + ``im2col`` transpose copy)
  and then runs one skinny GEMM per sample.  Here the windows are
  gathered once, directly into the ``(C*k*k, N*P)`` layout a single
  fused GEMM consumes.  Every output element is the same dot product
  over the same operand order, but BLAS may *accumulate* it in a
  different order depending on which n-microkernel a column lands in:
  columns whose index modulo the microkernel width (8 on every dgemm
  build we target) differs between the fused and the per-sample call
  can differ in the last bit.  When the spatial position count ``P``
  is a multiple of 8, every sample's columns occupy whole microtiles
  at the same phase in both calls, and the results are bitwise equal
  (``tests/engine/test_kernels.py`` asserts this; the alignment rule
  was mapped empirically across shapes).  Convolutions with
  non-conforming ``P`` fall back to the stock path.  Every model-zoo
  convolution conforms, so the fast path always fires in practice;
  grouped convolutions (AlexNet conv2/4/5) benefit the most because
  their per-sample GEMMs are far too small to amortize BLAS setup.
* ``MaxPool2D`` with non-overlapping 2x2 windows (every pool in the
  model zoo): a reshape plus three ``np.maximum`` calls replaces the
  generic 6-D window reduction (~10x).
* ``LRN``: the stock path pads with explicit zero channels and
  concatenates shifted cumulative sums.  Adding a leading ``+0.0`` to
  an IEEE sum is exact and ``x*x`` never produces ``-0.0``, so the
  padded cumulative sums equal clipped unpadded ones bit for bit; the
  fast path exploits that, runs every elementwise step in place, and
  keeps the ``** beta`` ``pow`` calls (which cannot be reorganized)
  untouched.
* ``Dense``: the stock GEMM, sliced per trial group (see below) and
  written into a reused buffer.
* ``ReLU``: same ``np.maximum(x, 0.0)``, written into a reused buffer.

**Shape stability.** BLAS picks kernels (and therefore accumulation
orders) by operand size, so a GEMM over a trial-stacked batch is not
guaranteed to reproduce the unstacked bits.  Every GEMM-backed fast
kernel therefore slices a stacked batch back into per-trial-group
calls (``trial_groups`` in :func:`make_forward_fn`): each BLAS call
has shapes independent of the ``trial_batch`` setting, which is what
makes vectorized replay bit-identical to serial replay for any
chunking.  The slicing costs only Python loop overhead — the per-trial
GEMMs are the same total FLOPs and were measured no slower than one
large GEMM on the shapes the campaigns run.

Campaign replays additionally reuse their large intermediates through
:class:`KernelScratch`: the same (layer, role) buffer is written on
every replay chunk, which removes allocator churn and keeps the TLB
and cache footprint constant.  A buffer is only ever reused after the
chunk that produced it has been fully consumed, so aliasing is safe.

Everything else falls back to ``layer.forward``.

The faithfulness contract is enforced by ``tests/engine/test_kernels.py``,
which asserts ``np.array_equal`` against ``layer.forward`` across the
model zoo.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..nn.layer import Layer
from ..nn.layers.activation import ReLU
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.norm import LRN
from ..nn.layers.pool import MaxPool2D
from ..nn.tensor import conv_output_hw, flatten_spatial, pad_nchw


class KernelScratch:
    """Reusable per-campaign buffers keyed by (layer, role[, group]).

    One instance per layer campaign (and therefore per worker): buffers
    are never shared across threads or processes.  Keys are unique per
    layer, so a buffer is only rewritten when the previous replay chunk
    that filled it is already dead.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(self, key: Tuple, shape: Tuple[int, ...]) -> np.ndarray:
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float64)
            self._buffers[key] = buffer
        return buffer

    def zeros(self, key: Tuple, shape: Tuple[int, ...]) -> np.ndarray:
        """A zeroed buffer; only zeroed on (re)allocation.

        Used for padded inputs: the border stays zero forever because
        every reuse writes only the interior.
        """
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.zeros(shape, dtype=np.float64)
            self._buffers[key] = buffer
        return buffer


def fused_im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    scratch: Optional[KernelScratch] = None,
    key: Tuple = (),
) -> np.ndarray:
    """Unfold an NCHW batch into one GEMM-ready ``(C*k*k, N*P)`` matrix.

    Column order groups all spatial positions of sample 0, then sample
    1, ...; row order is (channel, kh, kw) — the same dot-product
    operand order as :func:`repro.nn.tensor.im2col`, so a single fused
    GEMM over all samples reproduces the per-sample GEMMs bitwise.
    Unlike ``im2col`` this makes exactly one copy (the strided gather
    lands directly in the target layout), and 1x1/stride-1 convolutions
    (NiN, inception bottlenecks) reduce to a plain transpose.
    """
    scratch = scratch or KernelScratch()
    if kernel == 1 and stride == 1 and padding == 0:
        n, c, h, w = x.shape
        cols = scratch.get(key + ("cols",), (c, n * h * w))
        np.copyto(
            cols.reshape(c, n, h * w),
            x.reshape(n, c, h * w).transpose(1, 0, 2),
        )
        return cols
    if padding > 0:
        n, c, h, w = x.shape
        padded = scratch.zeros(
            key + ("pad",), (n, c, h + 2 * padding, w + 2 * padding)
        )
        padded[:, :, padding : padding + h, padding : padding + w] = x
        x = padded
    n, c, h, w = x.shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, 0)
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, kernel, kernel, n, out_h, out_w),
        strides=(sc, sh, sw, sn, sh * stride, sw * stride),
        writeable=False,
    )
    cols = scratch.get(
        key + ("cols",), (c, kernel, kernel, n, out_h, out_w)
    )
    np.copyto(cols, windows)
    return cols.reshape(c * kernel * kernel, n * out_h * out_w)


def _conv_fused(
    layer: Conv2D,
    x: np.ndarray,
    scratch: KernelScratch,
    trial_groups: int = 1,
) -> np.ndarray:
    """Fused-GEMM convolution, bitwise equal to ``Conv2D.forward``.

    When the batch axis stacks ``trial_groups`` independent trials
    (:meth:`Network.forward_from_many`), each trial's slice runs
    through its own gather + GEMM so every BLAS call has the exact
    shapes the unstacked path uses — BLAS kernel dispatch depends on
    operand sizes, so shape-stable calls are what makes the stacked
    replay bit-identical to the one-trial-at-a-time replay.
    """
    n = x.shape[0]
    out_c, out_h, out_w = layer.output_shape
    positions = out_h * out_w
    name = layer.name
    out = scratch.get((name, "out"), (n, out_c, out_h, out_w))
    out3 = out.reshape(n, out_c, positions)
    if (
        layer.kernel == 1
        and layer.stride == 1
        and layer.padding == 0
        and layer.groups == 1
    ):
        # 1x1 convolution: im2col of the input IS the input, so the
        # stock batched matmul consumes x directly — no gather, no
        # output transpose, and trivially stacking-safe because the
        # GEMMs are per sample either way.
        np.matmul(
            layer.weight.reshape(out_c, -1)[None, :, :],
            x.reshape(n, x.shape[1], positions),
            out=out3,
        )
        if layer.bias is not None:
            out += layer.bias[None, :, None, None]
        return out
    splits = trial_groups if trial_groups > 1 and n % trial_groups == 0 else 1
    per_trial = n // splits
    in_per_group = layer.weight.shape[1]
    out_per_group = out_c // layer.groups
    # The bias add is fused into the untranspose copy (one addition
    # per element, same operands as the stock matmul-then-add, so the
    # bits match while a full read+write pass over the output is
    # saved).
    bias = None
    if layer.bias is not None:
        bias = layer.bias[:, None]
    for t in range(splits):
        rows = slice(t * per_trial, (t + 1) * per_trial)
        x_t = x[rows]
        if layer.groups == 1:
            cols = fused_im2col(
                x_t, layer.kernel, layer.stride, layer.padding, scratch, (name,)
            )
            flat = scratch.get((name, "flat"), (out_c, cols.shape[1]))
            np.matmul(layer.weight.reshape(out_c, -1), cols, out=flat)
            result = flat.reshape(out_c, per_trial, positions).transpose(
                1, 0, 2
            )
            if bias is not None:
                np.add(result, bias, out=out3[rows])
            else:
                np.copyto(out3[rows], result)
            continue
        for g in range(layer.groups):
            # A strided channel-slice view: both the pad copy and the
            # as_strided gather read through arbitrary strides, so no
            # contiguity copy is needed.
            x_g = x_t[:, g * in_per_group : (g + 1) * in_per_group]
            cols = fused_im2col(
                x_g,
                layer.kernel,
                layer.stride,
                layer.padding,
                scratch,
                (name, "g"),
            )
            channels = slice(g * out_per_group, (g + 1) * out_per_group)
            flat = scratch.get(
                (name, "flat"), (out_per_group, cols.shape[1])
            )
            np.matmul(layer.weight[channels].reshape(out_per_group, -1), cols, out=flat)
            result = flat.reshape(out_per_group, per_trial, positions).transpose(
                1, 0, 2
            )
            if bias is not None:
                np.add(result, bias[channels], out=out3[rows, channels])
            else:
                np.copyto(out3[rows, channels], result)
    return out


def _dense_sliced(
    layer: Dense,
    x: np.ndarray,
    scratch: KernelScratch,
    trial_groups: int = 1,
) -> np.ndarray:
    """Dense forward with per-trial GEMM slicing (see ``_conv_fused``).

    The stock path runs one ``(N, in) @ (in, out)`` GEMM over the whole
    (possibly trial-stacked) batch; BLAS picks kernels by operand size,
    so the stacked result is not guaranteed to match the unstacked one
    bit for bit.  Slicing the stack back into per-trial GEMMs restores
    the exact call shapes of the unstacked path.
    """
    x = flatten_spatial(x)
    n = x.shape[0]
    name = layer.name
    out = scratch.get((name, "out"), (n, layer.out_features))
    splits = trial_groups if trial_groups > 1 and n % trial_groups == 0 else 1
    per_trial = n // splits
    weight_t = layer.weight.T
    for t in range(splits):
        rows = slice(t * per_trial, (t + 1) * per_trial)
        np.matmul(x[rows], weight_t, out=out[rows])
    if layer.bias is not None:
        out += layer.bias
    return out


def _maxpool_2x2(
    x: np.ndarray, scratch: KernelScratch, name: str
) -> np.ndarray:
    """Non-overlapping 2x2 max pool via four strided slices."""
    n, c, h, w = x.shape
    v = x.reshape(n, c, h // 2, 2, w // 2, 2)
    out = scratch.get((name, "out"), (n, c, h // 2, w // 2))
    tmp = scratch.get((name, "tmp"), (n, c, h // 2, w // 2))
    np.maximum(v[:, :, :, 0, :, 0], v[:, :, :, 0, :, 1], out=out)
    np.maximum(v[:, :, :, 1, :, 0], v[:, :, :, 1, :, 1], out=tmp)
    np.maximum(out, tmp, out=out)
    return out


def _lrn_fast(
    layer: LRN, x: np.ndarray, scratch: KernelScratch
) -> np.ndarray:
    """In-place LRN, bitwise equal to ``LRN.forward``.

    The stock path cumulative-sums a zero-padded channel axis.  Because
    ``x*x`` is never ``-0.0`` and IEEE addition of a leading/trailing
    ``+0.0`` is exact, the padded cumulative sums equal the unpadded
    ones (index-clipped at the top); the window sums, the ``** beta``,
    and the final divide are then the very same elementwise operations
    as the stock path, executed into reused buffers.
    """
    name = layer.name
    half = layer.local_size // 2
    channels = x.shape[1]
    squared = scratch.get((name, "sq"), x.shape)
    np.multiply(x, x, out=squared)
    cumulative = scratch.get((name, "cum"), x.shape)
    np.cumsum(squared, axis=1, out=cumulative)
    window = scratch.get((name, "win"), x.shape)
    # upper[c] = cumulative[min(c + half, C-1)]: two slice copies beat
    # the equivalent fancy-indexed np.take.
    split = max(channels - half, 0)
    window[:, :split] = cumulative[:, half:]
    window[:, split:] = cumulative[:, channels - 1 : channels]
    # lower[c] = cumulative[c - half - 1] where it exists, else exact 0.
    window[:, half + 1 :] -= cumulative[:, : channels - half - 1]
    window *= layer.alpha / layer.local_size
    window += layer.k
    np.power(window, layer.beta, out=window)
    np.divide(x, window, out=window)
    return window


def make_forward_fn(
    scratch: Optional[KernelScratch] = None,
    trial_groups: int = 1,
) -> Callable[[Layer, Sequence[np.ndarray]], np.ndarray]:
    """A ``ForwardFn`` routing hot layers through the fast kernels.

    With a :class:`KernelScratch`, large intermediates are reused
    across calls; the caller must guarantee single-threaded use of the
    returned function (one scratch per campaign/worker does).

    ``trial_groups`` declares how many independent trials the batch
    axis stacks (``forward_from_many``): GEMM-backed layers slice the
    stack so every BLAS call keeps the unstacked operand shapes, which
    is what makes stacked replay bit-identical to serial replay.
    """
    scratch = scratch or KernelScratch()

    def forward(layer: Layer, arrays: Sequence[np.ndarray]) -> np.ndarray:
        if isinstance(layer, Conv2D):
            # Depthwise convolutions keep their einsum path: the
            # fused-GEMM layout does not apply to (C, 1, k, k) weights.
            # The position count must be microtile-aligned (see module
            # docstring) for the fused GEMM to be bitwise faithful;
            # plain 1x1 convolutions are exempt because their fast path
            # runs the stock per-sample batched matmul.
            positions = layer.output_shape[1] * layer.output_shape[2]
            plain_1x1 = (
                layer.kernel == 1
                and layer.stride == 1
                and layer.padding == 0
                and layer.groups == 1
            )
            if (positions % 8 == 0 or plain_1x1) and not (
                layer.groups == arrays[0].shape[1]
                and layer.weight.shape[1] == 1
            ):
                return _conv_fused(layer, arrays[0], scratch, trial_groups)
        elif isinstance(layer, Dense):
            return _dense_sliced(layer, arrays[0], scratch, trial_groups)
        elif isinstance(layer, MaxPool2D):
            (x,) = arrays
            if (
                layer.kernel == 2
                and layer.stride == 2
                and layer.padding == 0
                and x.shape[2] % 2 == 0
                and x.shape[3] % 2 == 0
            ):
                return _maxpool_2x2(x, scratch, layer.name)
        elif isinstance(layer, LRN):
            return _lrn_fast(layer, arrays[0], scratch)
        elif isinstance(layer, ReLU):
            out = scratch.get((layer.name, "out"), arrays[0].shape)
            np.maximum(arrays[0], 0.0, out=out)
            return out
        return layer.forward(arrays)

    return forward


def fast_forward(layer: Layer, arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Stateless fast forward (fresh buffers per call).

    A valid ``ForwardFn`` for :meth:`Network.forward_from` /
    :meth:`Network.forward_from_many`; output is bitwise identical to
    ``layer.forward(arrays)`` for every layer type (fast path or not).
    Campaign code uses :func:`make_forward_fn` with a shared scratch
    instead; this wrapper exists for one-off calls and tests.
    """
    return make_forward_fn()(layer, arrays)
