"""Worker-pool plumbing for the injection engine.

The campaign parallelizes across start layers: each worker runs the
full delta-grid injection for one layer and returns that layer's
per-(batch, delta, repeat) squared-error cells.  Determinism needs no
locks — every trial owns a seed-sequence stream and the main process
reduces cells in a fixed order — so the pool is pure fan-out.

Two backends:

* ``thread`` (default): workers share the network and the clean
  activation caches directly.  numpy releases the GIL inside BLAS and
  large ufunc kernels, so replay work genuinely overlaps on multicore
  hosts, and there is no serialization cost.
* ``process``: workers run in spawned interpreters.  The activation
  caches — the bulky read-only state — are shipped once through
  :class:`SharedCaches` (``multiprocessing.shared_memory``), not
  pickled per task; the network is pickled **once into the same shared
  segment** (a named blob) so spawning W workers maps one copy instead
  of shipping W copies through initializer arguments.

Worker failures surface through the resilience layer:
:class:`~repro.errors.TransientError` raised inside a worker is retried
per layer task (``ParallelSettings.transient_retries``); any other
exception aborts the campaign as a :class:`~repro.errors.ProfilingError`
naming the layer, with the original exception chained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nn.graph import INPUT, ActivationCache

#: Descriptor of one cached array inside the shared segment:
#: (batch_index, layer_name, dtype_str, shape, byte_offset).
ArrayDescriptor = Tuple[int, str, str, Tuple[int, ...], int]

#: Descriptor of one opaque byte blob inside the shared segment:
#: (blob_name, byte_offset, length).
BlobDescriptor = Tuple[str, int, int]


@dataclass
class SharedCaches:
    """Clean activation caches copied into one shared-memory segment.

    Besides the activation arrays the segment can carry named byte
    blobs (``blobs=``) — used to ship the pickled network to process
    workers through one shared mapping instead of per-worker pickles.
    """

    shm_name: str
    descriptors: List[ArrayDescriptor]
    blob_descriptors: List[BlobDescriptor] = field(default_factory=list)
    _shm: Optional[object] = None

    @classmethod
    def create(
        cls,
        caches: Sequence[ActivationCache],
        blobs: Optional[Mapping[str, bytes]] = None,
    ) -> "SharedCaches":
        from multiprocessing import shared_memory

        descriptors: List[ArrayDescriptor] = []
        offset = 0
        arrays: List[Tuple[ArrayDescriptor, np.ndarray]] = []
        for index, cache in enumerate(caches):
            for name in cache.names():
                value = np.ascontiguousarray(cache[name])
                descriptor = (
                    index,
                    name,
                    value.dtype.str,
                    tuple(value.shape),
                    offset,
                )
                descriptors.append(descriptor)
                arrays.append((descriptor, value))
                offset += value.nbytes
        blob_descriptors: List[BlobDescriptor] = []
        for blob_name, payload in (blobs or {}).items():
            blob_descriptors.append((blob_name, offset, len(payload)))
            offset += len(payload)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (index, name, dtype, shape, start), value in arrays:
            target = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start
            )
            target[...] = value
        for blob_name, start, length in blob_descriptors:
            shm.buf[start : start + length] = (blobs or {})[blob_name]
        return cls(
            shm_name=shm.name,
            descriptors=descriptors,
            blob_descriptors=blob_descriptors,
            _shm=shm,
        )

    @staticmethod
    def attach(
        shm_name: str,
        descriptors: Sequence[ArrayDescriptor],
        blob_descriptors: Sequence[BlobDescriptor] = (),
    ) -> Tuple[List[ActivationCache], Dict[str, bytes], object]:
        """Rebuild the cache list from the shared segment (worker side).

        On Linux the POSIX segment is mapped read-only straight from
        ``/dev/shm`` — zero copies, and no interaction with the
        multiprocessing resource tracker (whose per-attach registration
        double-unlinks parent-owned segments on Python < 3.13).  Other
        platforms fall back to a ``SharedMemory`` attach.
        """
        import mmap
        from pathlib import Path

        holder: object
        path = Path("/dev/shm") / shm_name.lstrip("/")
        if path.exists():
            handle = path.open("rb")
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            buffer: object = mapped
            holder = (handle, mapped)
        else:  # pragma: no cover - non-Linux fallback
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=shm_name)
            buffer = shm.buf
            holder = shm
        per_batch: Dict[int, Dict[str, np.ndarray]] = {}
        for index, name, dtype, shape, offset in descriptors:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buffer, offset=offset
            )
            per_batch.setdefault(index, {})[name] = view
        caches = [
            ActivationCache(per_batch[index])
            for index in sorted(per_batch)
        ]
        blobs: Dict[str, bytes] = {}
        for blob_name, offset, length in blob_descriptors:
            view = np.ndarray(
                (length,), dtype=np.uint8, buffer=buffer, offset=offset
            )
            blobs[blob_name] = view.tobytes()
        return caches, blobs, holder

    def release(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


#: Per-worker state for the process backend, set by the initializer.
_WORKER_STATE: Dict[str, object] = {}


def _process_worker_init(
    shm_name: str,
    descriptors: List[ArrayDescriptor],
    blob_descriptors: List[BlobDescriptor],
) -> None:
    import pickle

    caches, blobs, shm = SharedCaches.attach(
        shm_name, descriptors, blob_descriptors
    )
    _WORKER_STATE["network"] = pickle.loads(blobs["network"])
    _WORKER_STATE["caches"] = caches
    _WORKER_STATE["shm"] = shm


def _process_worker_run(
    task_bytes: bytes, telemetry_enabled: bool = False
) -> bytes:
    """Run one layer campaign inside a process-pool worker.

    Returns pickled ``(cells, spans, metrics_snapshot)``.  When
    telemetry is on, the worker records into a local tracer/registry
    (span ids are namespaced by pid + layer so re-used pool workers
    can't collide) and ships the buffers back with the result; the
    parent re-parents the spans under its replay span and merges the
    snapshot at join.  Spans/snapshot are empty when telemetry is off.
    """
    import os
    import pickle

    from ..telemetry.metrics import MetricsRegistry
    from ..telemetry.spans import Tracer
    from .campaign import run_layer_campaign

    task = pickle.loads(task_bytes)
    tracer = None
    metrics = None
    if telemetry_enabled:
        tracer = Tracer(worker=f"pid{os.getpid()}:{task['name']}")
        metrics = MetricsRegistry()
    result = run_layer_campaign(
        _WORKER_STATE["network"],
        _WORKER_STATE["caches"],
        tracer=tracer,
        metrics=metrics,
        **task,
    )
    spans = tracer.events() if tracer is not None else []
    snapshot = metrics.snapshot() if metrics is not None else {}
    return pickle.dumps((result, spans, snapshot))
