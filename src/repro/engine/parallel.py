"""Worker-pool plumbing for the injection engine.

The campaign parallelizes across start layers: each worker runs the
full delta-grid injection for one layer and returns that layer's
per-(batch, delta, repeat) squared-error cells.  Determinism needs no
locks — every trial owns a seed-sequence stream and the main process
reduces cells in a fixed order — so the pool is pure fan-out.

Two backends:

* ``thread`` (default): workers share the network and the clean
  activation caches directly.  numpy releases the GIL inside BLAS and
  large ufunc kernels, so replay work genuinely overlaps on multicore
  hosts, and there is no serialization cost.
* ``process``: workers run in spawned interpreters.  The activation
  caches — the bulky read-only state — are shipped once through
  :class:`SharedCaches` (``multiprocessing.shared_memory``), not
  pickled per task; the network is pickled once per worker at
  initializer time.

Worker failures surface through the resilience layer:
:class:`~repro.errors.TransientError` raised inside a worker is retried
per layer task (``ParallelSettings.transient_retries``); any other
exception aborts the campaign as a :class:`~repro.errors.ProfilingError`
naming the layer, with the original exception chained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.graph import INPUT, ActivationCache

#: Descriptor of one cached array inside the shared segment:
#: (batch_index, layer_name, dtype_str, shape, byte_offset).
ArrayDescriptor = Tuple[int, str, str, Tuple[int, ...], int]


@dataclass
class SharedCaches:
    """Clean activation caches copied into one shared-memory segment."""

    shm_name: str
    descriptors: List[ArrayDescriptor]
    _shm: Optional[object] = None

    @classmethod
    def create(cls, caches: Sequence[ActivationCache]) -> "SharedCaches":
        from multiprocessing import shared_memory

        descriptors: List[ArrayDescriptor] = []
        offset = 0
        arrays: List[Tuple[ArrayDescriptor, np.ndarray]] = []
        for index, cache in enumerate(caches):
            for name in cache.names():
                value = np.ascontiguousarray(cache[name])
                descriptor = (
                    index,
                    name,
                    value.dtype.str,
                    tuple(value.shape),
                    offset,
                )
                descriptors.append(descriptor)
                arrays.append((descriptor, value))
                offset += value.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (index, name, dtype, shape, start), value in arrays:
            target = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start
            )
            target[...] = value
        return cls(shm_name=shm.name, descriptors=descriptors, _shm=shm)

    @staticmethod
    def attach(
        shm_name: str, descriptors: Sequence[ArrayDescriptor]
    ) -> Tuple[List[ActivationCache], object]:
        """Rebuild the cache list from the shared segment (worker side).

        On Linux the POSIX segment is mapped read-only straight from
        ``/dev/shm`` — zero copies, and no interaction with the
        multiprocessing resource tracker (whose per-attach registration
        double-unlinks parent-owned segments on Python < 3.13).  Other
        platforms fall back to a ``SharedMemory`` attach.
        """
        import mmap
        from pathlib import Path

        holder: object
        path = Path("/dev/shm") / shm_name.lstrip("/")
        if path.exists():
            handle = path.open("rb")
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            buffer: object = mapped
            holder = (handle, mapped)
        else:  # pragma: no cover - non-Linux fallback
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=shm_name)
            buffer = shm.buf
            holder = shm
        per_batch: Dict[int, Dict[str, np.ndarray]] = {}
        for index, name, dtype, shape, offset in descriptors:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buffer, offset=offset
            )
            per_batch.setdefault(index, {})[name] = view
        caches = [
            ActivationCache(per_batch[index])
            for index in sorted(per_batch)
        ]
        return caches, holder

    def release(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


#: Per-worker state for the process backend, set by the initializer.
_WORKER_STATE: Dict[str, object] = {}


def _process_worker_init(
    network_bytes: bytes,
    shm_name: str,
    descriptors: List[ArrayDescriptor],
) -> None:
    import pickle

    caches, shm = SharedCaches.attach(shm_name, descriptors)
    _WORKER_STATE["network"] = pickle.loads(network_bytes)
    _WORKER_STATE["caches"] = caches
    _WORKER_STATE["shm"] = shm


def _process_worker_run(
    task_bytes: bytes, telemetry_enabled: bool = False
) -> bytes:
    """Run one layer campaign inside a process-pool worker.

    Returns pickled ``(cells, spans, metrics_snapshot)``.  When
    telemetry is on, the worker records into a local tracer/registry
    (span ids are namespaced by pid + layer so re-used pool workers
    can't collide) and ships the buffers back with the result; the
    parent re-parents the spans under its replay span and merges the
    snapshot at join.  Spans/snapshot are empty when telemetry is off.
    """
    import os
    import pickle

    from ..telemetry.metrics import MetricsRegistry
    from ..telemetry.spans import Tracer
    from .campaign import run_layer_campaign

    task = pickle.loads(task_bytes)
    tracer = None
    metrics = None
    if telemetry_enabled:
        tracer = Tracer(worker=f"pid{os.getpid()}:{task['name']}")
        metrics = MetricsRegistry()
    result = run_layer_campaign(
        _WORKER_STATE["network"],
        _WORKER_STATE["caches"],
        tracer=tracer,
        metrics=metrics,
        **task,
    )
    spans = tracer.events() if tracer is not None else []
    snapshot = metrics.snapshot() if metrics is not None else {}
    return pickle.dumps((result, spans, snapshot))
