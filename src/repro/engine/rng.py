"""Deterministic per-trial RNG streams for injection campaigns.

Every injection trial is identified by a stable coordinate: the start
layer's position in the network, the batch index within the profiling
set, the delta-grid index, and the repeat index.  Each trial draws its
noise from a dedicated generator seeded by

    ``SeedSequence(seed).spawn(...)`` down the path
    ``(layer_position, batch_index, delta_index, repeat_index)``

(constructed directly via the equivalent ``spawn_key``, which avoids
materializing intermediate children).  Because the stream depends only
on the coordinate — never on execution order — the campaign produces
bit-identical sigmas regardless of worker count, trial batching, or
the order layers and batches are visited in.  This also fixes the old
profiler coupling where one ``default_rng(seed)`` threaded through the
nested loop made every layer's sigmas depend on every loop before it.
"""

from __future__ import annotations

import numpy as np


def trial_seed_sequence(
    seed: int,
    layer_position: int,
    batch_index: int,
    delta_index: int,
    repeat_index: int,
) -> np.random.SeedSequence:
    """The spawned child seed for one trial coordinate.

    Identical to
    ``SeedSequence(seed).spawn(P)[layer_position].spawn(B)[batch_index]
    .spawn(D)[delta_index].spawn(R)[repeat_index]`` for any counts
    P/B/D/R large enough — spawning appends the child index to the
    parent's ``spawn_key``.
    """
    return np.random.SeedSequence(
        entropy=seed,
        spawn_key=(layer_position, batch_index, delta_index, repeat_index),
    )


def trial_rng(
    seed: int,
    layer_position: int,
    batch_index: int,
    delta_index: int,
    repeat_index: int,
) -> np.random.Generator:
    """Generator for one trial, independent of any other trial's draws."""
    return np.random.default_rng(
        trial_seed_sequence(
            seed, layer_position, batch_index, delta_index, repeat_index
        )
    )
