"""Per-stage timing instrumentation for injection campaigns.

The engine accounts wall-clock time to four stages so a slow profiling
run can be diagnosed at a glance (and so ``docs/performance.md`` can
report where the speedups come from):

``plan``       replay-plan construction (memoized; near-zero after warmup)
``reference``  clean forward passes that build the activation caches
``replay``     the injection trials themselves (the dominant stage)
``fit``        per-layer regression + diagnostics
``reduce``     fixed-order reduction of the per-trial cells

Timings are cumulative across workers, measured on whichever thread
runs the stage; with a pool the ``replay`` figure is summed CPU-side
work, while ``total`` stays wall clock.

:class:`StageTimings` is now a thin adapter over the tracing-span
model (:mod:`repro.telemetry.spans`): when a live tracer is attached,
each stage also opens an ``engine.<stage>`` span and the recorded
seconds come from that span's clock, so the legacy ``seconds`` dict and
the trace agree exactly.  Without a tracer it times stages directly —
same attribute surface, zero new dependencies on the hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..telemetry.spans import Span, Tracer


@dataclass
class StageTimings:
    """Cumulative seconds per campaign stage.

    ``tracer`` is optional and, when set, must be a *recording* tracer
    (pass None when telemetry is disabled — a ``NullTracer``'s frozen
    clock would zero out the timings).
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[Tracer] = None

    @contextmanager
    def stage(
        self,
        name: str,
        parent_id: Optional[str] = None,
        **attributes: object,
    ) -> Iterator[Optional[Span]]:
        """Time one stage; yields the span when a tracer is attached."""
        if self.tracer is None:
            begin = time.perf_counter()
            try:
                yield None
            finally:
                self.add(name, time.perf_counter() - begin)
            return
        span: Optional[Span] = None
        try:
            with self.tracer.span(
                f"engine.{name}", parent_id=parent_id, **attributes
            ) as span:
                yield span
        finally:
            if span is not None:
                self.add(name, span.duration)

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def as_dict(self) -> Dict[str, float]:
        return dict(self.seconds)
