"""Per-stage timing instrumentation for injection campaigns.

The engine accounts wall-clock time to four stages so a slow profiling
run can be diagnosed at a glance (and so ``docs/performance.md`` can
report where the speedups come from):

``plan``       replay-plan construction (memoized; near-zero after warmup)
``reference``  clean forward passes that build the activation caches
``replay``     the injection trials themselves (the dominant stage)
``fit``        per-layer regression + diagnostics

Timings are cumulative across workers, measured on whichever thread
runs the stage; with a pool the ``replay`` figure is summed CPU-side
work, while ``total`` stays wall clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class StageTimings:
    """Cumulative seconds per campaign stage."""

    seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - begin)

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def as_dict(self) -> Dict[str, float]:
        return dict(self.seconds)
