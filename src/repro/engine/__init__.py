"""Execution engine for injection campaigns (replay plans, batching, pools).

The profiler's Sec. V-A measurement loop is the repo's dominant cost;
this package makes it a first-class batched workload:

* :mod:`~repro.engine.kernels` — bitwise-faithful fast kernels for the
  replay-hot layers (fused-GEMM conv, strided 2x2 max pool).
* :mod:`~repro.engine.campaign` — :class:`InjectionEngine`, the
  vectorized campaign runner with per-trial seed-sequence streams,
  trial batching, and layer-level worker pools.
* :mod:`~repro.engine.parallel` — thread/process pools with the clean
  activation caches shared read-only (shared memory for processes).
* :mod:`~repro.engine.rng` — the deterministic trial-stream derivation.
* :mod:`~repro.engine.timing` — per-stage wall-clock accounting.
* :mod:`~repro.engine.alloc` — glibc allocator tuning for large replay
  temporaries.

Architecture, determinism contract, knobs, and measured speedups:
``docs/performance.md``.
"""

from ..config import ParallelSettings
from .alloc import tune_allocator
from .campaign import (
    CampaignResult,
    InjectionEngine,
    LayerCells,
    enforce_finite_trial,
    run_layer_campaign,
)
from .kernels import (
    KernelScratch,
    fast_forward,
    fused_im2col,
    make_forward_fn,
)
from .parallel import SharedCaches
from .rng import trial_rng, trial_seed_sequence
from .timing import StageTimings

__all__ = [
    "CampaignResult",
    "InjectionEngine",
    "KernelScratch",
    "LayerCells",
    "ParallelSettings",
    "SharedCaches",
    "StageTimings",
    "enforce_finite_trial",
    "fast_forward",
    "fused_im2col",
    "make_forward_fn",
    "run_layer_campaign",
    "trial_rng",
    "trial_seed_sequence",
    "tune_allocator",
]
