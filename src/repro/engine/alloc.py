"""Process-wide allocator tuning for large replay temporaries.

Vectorized replay allocates multi-megabyte numpy temporaries (stacked
inputs, im2col matrices, GEMM outputs) in a tight loop.  glibc's malloc
serves requests above ``M_MMAP_THRESHOLD`` (128 KiB by default) with
fresh ``mmap`` regions that are unmapped on free — so every iteration
re-faults every page it touches.  Raising the mmap and trim thresholds
keeps those buffers inside the recycled heap, which measured ~2.5x
faster on large-array copy/GEMM microbenchmarks on this substrate.

The tuning is a no-op (and silently skipped) on platforms without
glibc ``mallopt``; it never changes numerical results.
"""

from __future__ import annotations

import ctypes

#: glibc mallopt parameter codes (see mallopt(3)).
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

#: 1 GiB: effectively "never mmap, never trim" for our workload sizes.
_THRESHOLD_BYTES = 1 << 30

_tuned = False


def tune_allocator() -> bool:
    """Raise glibc's mmap/trim thresholds once per process.

    Returns True when the thresholds were (or already had been)
    applied, False when the platform has no usable ``mallopt``.
    Idempotent and safe to call from any thread at engine start.
    """
    global _tuned
    if _tuned:
        return True
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        ok_mmap = libc.mallopt(_M_MMAP_THRESHOLD, _THRESHOLD_BYTES)
        ok_trim = libc.mallopt(_M_TRIM_THRESHOLD, _THRESHOLD_BYTES)
        if ok_mmap == 1 and ok_trim == 1:
            _tuned = True
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        return False
    return _tuned
