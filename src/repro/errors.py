"""Exception hierarchy for the repro package.

All errors raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A network graph is malformed (unknown input, duplicate name, cycle)."""


class ShapeError(ReproError):
    """Tensor shapes are inconsistent with a layer's expectations."""


class QuantizationError(ReproError):
    """A fixed-point format or bitwidth request is invalid."""


class ProfilingError(ReproError):
    """Error-injection profiling could not produce a usable regression."""


class SearchError(ReproError):
    """The sigma binary search could not bracket or converge."""


class OptimizationError(ReproError):
    """The constrained xi optimization failed to produce a feasible result."""


class ModelError(ReproError):
    """A model could not be constructed or pretrained."""


class NumericalGuardError(ReproError):
    """A resilience guardrail caught NaN/Inf or degenerate values.

    Carries the structured :class:`~repro.resilience.Diagnostic` records
    that triggered it, so callers can log or report exactly which stage
    and layer went numerically bad instead of receiving silent garbage.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class TransientError(ReproError):
    """A stage failed in a way expected to succeed on retry.

    Raised by flaky evaluators (and by the chaos harness when simulating
    them); the resilience layer retries these a bounded number of times
    before giving up.
    """


class RetryExhaustedError(OptimizationError):
    """Every attempt in a fallback chain failed.

    ``attempts`` records the per-attempt failure messages in order, so
    the exhaustion report shows the whole chain, not just the last
    error.
    """

    def __init__(self, message: str, attempts=()):
        super().__init__(message)
        self.attempts = list(attempts)


class ResumeError(ReproError):
    """Persisted run state is missing, corrupt, or incompatible."""


class DegradedResultWarning(UserWarning):
    """A result came from a degraded fallback path, not the primary solver.

    Not a :class:`ReproError`: the pipeline *succeeded*, but via a safe
    fallback (e.g. the equal-xi scheme after SLSQP exhaustion), and the
    result is correspondingly conservative.
    """
