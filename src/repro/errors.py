"""Exception hierarchy for the repro package.

All errors raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A network graph is malformed (unknown input, duplicate name, cycle)."""


class ShapeError(ReproError):
    """Tensor shapes are inconsistent with a layer's expectations."""


class QuantizationError(ReproError):
    """A fixed-point format or bitwidth request is invalid."""


class ProfilingError(ReproError):
    """Error-injection profiling could not produce a usable regression."""


class SearchError(ReproError):
    """The sigma binary search could not bracket or converge."""


class OptimizationError(ReproError):
    """The constrained xi optimization failed to produce a feasible result."""


class ModelError(ReproError):
    """A model could not be constructed or pretrained."""
