"""Runtime sanitizer mode (``REPRO_SANITIZE=1``).

The static analyzers in :mod:`repro.check` prove determinism contracts
without running anything; this module is their runtime counterpart — a
set of cheap tripwires that turn silent contract violations into
immediate hard failures when the environment variable
``REPRO_SANITIZE`` is set to a non-empty value other than ``"0"``:

* **Cache-key recomputation** (:func:`repro.cache.keys.make_key`):
  every key is computed twice, the second time from the JSON
  round-trip of the canonical payload.  A payload whose encoding is
  not a fixed point (unstable iteration order, non-canonical float
  text, a ``repr`` that differs between passes) raises instead of
  silently producing a key that could drift between runs.
* **Store write verification** (:class:`repro.cache.store.ResultCache`):
  every ``put_json``/``put_arrays`` immediately re-opens the entry it
  just wrote and re-verifies the checksum, so a torn or miscomputed
  write can never be discovered later as a "corruption miss".
* **FP-error trapping** (:func:`fp_guard`): engine injection kernels
  run under ``np.errstate(over="raise", invalid="raise",
  divide="raise")``, turning overflow/NaN production inside a replay
  into a ``FloatingPointError`` at the faulting trial instead of a
  structured non-finite diagnostic several reductions later.
  Underflow stays untrapped — denormal activations are routine.

The sanitizer observes; it never changes results: a clean run is
bit-identical with the mode on or off (asserted by
``tests/check/test_sanitize.py``).
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import ContextManager

#: Environment variable that switches sanitizer mode on.
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests runtime tripwires."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


def fp_guard() -> ContextManager[object]:
    """Errstate context for engine kernels under the sanitizer.

    Traps overflow, invalid operations, and divide-by-zero as
    ``FloatingPointError``; a no-op context manager when the sanitizer
    is off, so the hot path stays branch-free beyond one env lookup.
    """
    if not sanitize_enabled():
        return nullcontext()
    import numpy as np

    return np.errstate(over="raise", invalid="raise", divide="raise")


__all__ = ["SANITIZE_ENV", "fp_guard", "sanitize_enabled"]
