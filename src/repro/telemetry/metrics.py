"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` records run-level aggregates — trials
injected, kernel fast-path vs. legacy-path dispatches, worker-pool
queue depth, retries and fallbacks fired, memoization hit rates — and
renders them as deterministic snapshots or Prometheus-style text.

Determinism contract: histogram bucket boundaries are fixed at
creation (never derived from the data), snapshots iterate names in
sorted order, and merging worker snapshots is plain integer/float
addition — so two runs of the same campaign produce byte-identical
exports (timing histogram *values* aside).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram boundaries for span/stage durations, in seconds.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: ``snapshot()`` payload: counters / gauges / histograms sub-dicts.
Snapshot = Dict[str, Dict[str, Any]]

#: Default ``# HELP`` text for the well-known metric names; the
#: registry's :meth:`MetricsRegistry.set_help` overrides per instance.
METRIC_HELP: Dict[str, str] = {
    "repro_outcome_restored_total": (
        "Optimization outcomes restored whole from the persistent cache."
    ),
    "repro_engine_retries_total": (
        "Transient worker failures retried by the injection engine."
    ),
    "repro_worker_queue_depth": (
        "Engine worker tasks submitted and not yet collected."
    ),
    "repro_layer_campaign_seconds": (
        "Wall-clock seconds per per-layer injection campaign."
    ),
    "repro_monitor_cells_queued": "Cells observed queued by the monitor.",
    "repro_monitor_cells_running": "Cells currently running.",
    "repro_monitor_cells_done": "Cells finished successfully.",
    "repro_monitor_cells_failed": "Cells that ended in failure.",
    "repro_monitor_cells_cached": "Cells satisfied by a cache hit.",
    "repro_monitor_cells_total": "Best-known total cell count.",
    "repro_monitor_cache_hits": "Persistent-cache hits reported by cells.",
    "repro_monitor_cache_misses": (
        "Persistent-cache misses reported by cells."
    ),
    "repro_monitor_retries": "Transient retries reported by stages.",
    "repro_monitor_events_seen": "Bus events folded into the monitor.",
    "repro_monitor_run_finished": (
        "1 when every observed run emitted 'finished'."
    ),
    "repro_monitor_progress_ratio": "Completed cells / known total.",
    "repro_monitor_eta_seconds": (
        "Naive remaining-work estimate from mean cell time."
    ),
}

#: Prefix fallbacks for families with dynamic member names.
_HELP_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro_kernel_", "Forward-kernel dispatches by code path."),
    ("ablate_cells_", "Ablation campaign cells by final status."),
    ("repro_monitor_", "Monitor projection of a tailed run's event bus."),
)


def metric_help(name: str) -> Optional[str]:
    """Default help text for a metric name (None when unknown)."""
    text = METRIC_HELP.get(name)
    if text is not None:
        return text
    for prefix, fallback in _HELP_PREFIXES:
        if name.startswith(prefix):
            return fallback
    return None


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time float (queue depth, active workers)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram with fixed boundaries.

    ``counts[i]`` observations fell at or below ``boundaries[i]``; the
    final slot counts the overflow (``+Inf`` bucket).
    """

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> None:
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if len(set(boundaries)) != len(boundaries):
            raise ValueError(f"histogram {name!r} has duplicate boundaries")
        self.name = name
        self.boundaries = boundaries
        self._counts = [0] * (len(boundaries) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.boundaries, float(value))
        with self._lock:
            self._counts[index] += 1
            self._sum += float(value)
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def merge_counts(self, counts: Sequence[int], total: float, n: int) -> None:
        """Add another histogram's tallies (same boundaries) to this one."""
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(total)
            self._count += int(n)


class MetricsRegistry:
    """Get-or-create metric store with deterministic snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._help: Dict[str, str] = {}

    def set_help(self, name: str, text: str) -> None:
        """Attach ``# HELP`` text to a metric for Prometheus export."""
        with self._lock:
            self._help[name] = str(text)

    def help_text(self, name: str) -> Optional[str]:
        """Instance help if set, else the well-known default."""
        with self._lock:
            text = self._help.get(name)
        return text if text is not None else metric_help(name)

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_SECONDS_BUCKETS
                )
            return metric

    def snapshot(self) -> Snapshot:
        """All metric values as plain sorted dicts (JSON-ready)."""
        with self._lock:
            counters: Dict[str, Any] = {
                n: c.value for n, c in sorted(self._counters.items())
            }
            gauges: Dict[str, Any] = {
                n: g.value for n, g in sorted(self._gauges.items())
            }
            histograms: Dict[str, Any] = {}
            for name, hist in sorted(self._histograms.items()):
                histograms[name] = {
                    "boundaries": list(hist.boundaries),
                    "counts": hist.bucket_counts(),
                    "sum": hist.sum,
                    "count": hist.count,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a worker snapshot into this registry (join-time merge).

        Counters and histograms add; gauges take the incoming value
        (point-in-time semantics).  The merge is tolerant of foreign
        snapshots: unknown top-level sections are ignored, metrics
        whose values do not coerce to numbers are skipped, and an
        *empty* histogram entry (no observations) is a no-op.  A real
        boundary mismatch between two non-empty histograms is still an
        error — merging incompatible buckets would corrupt both.
        """
        counters = snapshot.get("counters", {})
        if isinstance(counters, Mapping):
            for name, value in counters.items():
                try:
                    amount = int(value)
                    if amount < 0:
                        continue  # a counter cannot have decreased
                except (TypeError, ValueError):
                    continue  # non-numeric: skip, don't crash
                self.counter(name).inc(amount)
        gauges = snapshot.get("gauges", {})
        if isinstance(gauges, Mapping):
            for name, value in gauges.items():
                try:
                    incoming = float(value)
                except (TypeError, ValueError):
                    continue
                self.gauge(name).set(incoming)
        histograms = snapshot.get("histograms", {})
        if not isinstance(histograms, Mapping):
            return
        for name, data in histograms.items():
            if not isinstance(data, Mapping):
                continue  # unknown shape: nothing mergeable
            try:
                boundaries = [float(b) for b in data.get("boundaries", [])]
                counts = [int(c) for c in data.get("counts", [])]
                total = float(data.get("sum", 0.0))
                observations = int(data.get("count", 0))
            except (TypeError, ValueError):
                continue
            empty = observations == 0 and not any(counts)
            if empty and (not boundaries or not counts):
                continue  # empty histogram: merging it is a no-op
            if not boundaries:
                continue  # counts without boundaries: unmergeable
            hist = self.histogram(name, boundaries)
            if list(hist.boundaries) != boundaries:
                if empty:
                    continue
                raise ValueError(
                    f"histogram {name!r} bucket boundaries differ between "
                    "workers; refusing to merge"
                )
            if len(counts) != len(hist.boundaries) + 1:
                if empty:
                    continue
                raise ValueError(
                    f"histogram {name!r} snapshot has {len(counts)} bucket "
                    f"counts; expected {len(hist.boundaries) + 1}"
                )
            hist.merge_counts(counts, total, observations)

    def render_prometheus(self, prefix: str = "") -> str:
        """Prometheus text exposition (deterministic ordering).

        Each metric gets a ``# HELP`` line (when help text is known)
        and a ``# TYPE`` line, per the text-format convention.
        """
        snap = self.snapshot()
        lines: List[str] = []

        def _comments(name: str, full: str, kind: str) -> None:
            text = self.help_text(name)
            if text is not None:
                lines.append(f"# HELP {full} {text}")
            lines.append(f"# TYPE {full} {kind}")

        for name, value in snap["counters"].items():
            full = f"{prefix}{name}"
            _comments(name, full, "counter")
            lines.append(f"{full} {int(value)}")
        for name, value in snap["gauges"].items():
            full = f"{prefix}{name}"
            _comments(name, full, "gauge")
            lines.append(f"{full} {_format_float(float(value))}")
        for name, data in snap["histograms"].items():
            full = f"{prefix}{name}"
            _comments(name, full, "histogram")
            cumulative = 0
            for boundary, count in zip(data["boundaries"], data["counts"]):
                cumulative += int(count)
                lines.append(
                    f'{full}_bucket{{le="{_format_float(float(boundary))}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{full}_bucket{{le="+Inf"}} {int(data["count"])}')
            lines.append(f"{full}_sum {_format_float(float(data['sum']))}")
            lines.append(f"{full}_count {int(data['count'])}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_float(value: float) -> str:
    """Shortest clean decimal form (deterministic across runs)."""
    text = f"{value:.10g}"
    return text
