"""The per-run telemetry session: tracer + metrics + manifest + export.

One :class:`Telemetry` object travels through a pipeline run —
``PrecisionOptimizer`` builds it from :class:`repro.config.
TelemetrySettings` and hands the same instance to the profiler, the
injection engine, the sigma search, and the solver chain, so every
span lands in one buffer and every counter in one registry.

Disabled sessions (the default) carry the shared :data:`~repro.
telemetry.spans.NULL_TRACER` and an inert registry, so instrumented
code never branches on "is telemetry on" and never perturbs numerics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..config import TelemetrySettings
from .clock import ClockFn
from .events import EventBus, open_event_bus
from .manifest import RunManifest
from .metrics import MetricsRegistry
from .resources import NULL_RESOURCE_PROFILER, ResourceProfiler
from .sinks import (
    manifest_event,
    metrics_event,
    spans_to_events,
    write_events,
)
from .spans import NULL_TRACER, Tracer


class Telemetry:
    """Bundles the tracer, metrics registry, and manifest for one run."""

    def __init__(
        self,
        settings: Optional[TelemetrySettings] = None,
        clock: Optional[ClockFn] = None,
        manifest: Optional[RunManifest] = None,
    ) -> None:
        self.settings = settings or TelemetrySettings()
        self.manifest = manifest
        if self.settings.active:
            self.tracer: Tracer = Tracer(clock=clock)
        else:
            self.tracer = NULL_TRACER
        #: Always a live registry: callers increment unconditionally;
        #: a disabled session simply never exports the numbers.
        self.metrics = MetricsRegistry()
        #: Live lifecycle bus (``repro monitor`` tails it); the null
        #: bus when no events directory is configured.
        self.event_bus: EventBus = open_event_bus(
            self.settings.events_dir, clock=clock
        )
        #: Stage-boundary resource profiler; inert unless telemetry is
        #: active and ``sample_resources`` is on.
        if self.settings.active and self.settings.sample_resources:
            self.resources: ResourceProfiler = ResourceProfiler()
        else:
            self.resources = NULL_RESOURCE_PROFILER

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when spans and metrics are being collected."""
        return self.settings.active

    @classmethod
    def create(
        cls,
        telemetry: Union[None, TelemetrySettings, "Telemetry"],
        clock: Optional[ClockFn] = None,
    ) -> "Telemetry":
        """Coerce a user-facing knob into a session.

        Accepts an existing session (passed through unchanged, so one
        session spans a whole pipeline), a ``TelemetrySettings``, or
        None (a fresh disabled session).
        """
        if isinstance(telemetry, Telemetry):
            return telemetry
        return cls(settings=telemetry, clock=clock)

    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """The full export: manifest, merge-sorted spans, metrics."""
        out: List[Dict[str, Any]] = []
        if self.manifest is not None:
            summary = self.resources.summary()
            if summary and not self.manifest.resources:
                self.manifest.resources = summary
            out.append(manifest_event(self.manifest.as_dict()))
        out.extend(spans_to_events(self.tracer.events()))
        out.append(metrics_event(self.metrics.snapshot()))
        return out

    def export(self, path: Optional[str] = None) -> Optional[Path]:
        """Write the JSONL trace; returns the path (None if nowhere).

        ``path`` overrides ``settings.trace_path``.  A disabled session
        exports nothing.
        """
        target = path or self.settings.trace_path
        if not target or not self.enabled:
            return None
        return write_events(target, self.events())

    def render_prometheus(self) -> str:
        """The metrics registry in Prometheus text format."""
        return self.metrics.render_prometheus()

    def close(self) -> None:
        """Release the event-bus file descriptor (idempotent)."""
        self.event_bus.close()
