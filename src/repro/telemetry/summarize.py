"""Human-readable span-tree summaries of JSONL traces.

Backs the ``repro trace summarize`` CLI: reconstructs the span tree
from a trace file (or an in-memory event list) and renders each span's
**total** time (close minus open) and **self** time (total minus the
sum of direct children), plus the run manifest and metrics counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .sinks import PathLike, read_events


def split_events(
    events: Sequence[Mapping[str, Any]],
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """(manifest, spans, metrics) from a decoded event stream."""
    manifest: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = []
    for event in events:
        kind = event.get("type")
        if kind == "span":
            spans.append(dict(event))
        elif kind == "manifest" and manifest is None:
            manifest = dict(event.get("manifest", {}))
        elif kind == "metrics":
            metrics = dict(event.get("metrics", {}))
    return manifest, spans, metrics


def build_tree(
    spans: Sequence[Mapping[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, List[Dict[str, Any]]]]:
    """Roots and a parent-id -> children map, both in start order.

    A span whose ``parent_id`` never closed (crash mid-run) is
    promoted to a root rather than dropped — partial traces must still
    summarize.
    """
    by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
    roots: List[Dict[str, Any]] = []
    children: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(dict(span))
        else:
            roots.append(dict(span))
    order = lambda s: (float(s.get("start", 0.0)), str(s.get("span_id")))  # noqa: E731
    roots.sort(key=order)
    for siblings in children.values():
        siblings.sort(key=order)
    return roots, children


def self_time(
    span: Mapping[str, Any],
    children: Mapping[str, Sequence[Mapping[str, Any]]],
) -> float:
    """Span duration minus the summed durations of direct children."""
    total = float(span.get("duration", 0.0))
    direct = children.get(str(span.get("span_id")), [])
    spent = sum(float(c.get("duration", 0.0)) for c in direct)
    return max(0.0, total - spent)


def _describe_extras(span: Mapping[str, Any]) -> str:
    parts: List[str] = []
    attributes = span.get("attributes") or {}
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    counters = span.get("counters") or {}
    for key in sorted(counters):
        parts.append(f"{key}+{counters[key]}")
    if span.get("status") == "error":
        parts.append("status=ERROR")
    text = "  ".join(parts)
    if len(text) > 100:
        text = text[:97] + "..."
    return text


def render_tree(
    spans: Sequence[Mapping[str, Any]], max_depth: Optional[int] = None
) -> List[str]:
    """Indented span-tree lines with total/self seconds."""
    roots, children = build_tree(spans)
    lines: List[str] = []

    def walk(span: Mapping[str, Any], depth: int) -> None:
        total = float(span.get("duration", 0.0))
        own = self_time(span, children)
        extras = _describe_extras(span)
        indent = "  " * depth
        line = (
            f"{indent}{span.get('name')}  "
            f"total {total:.4f}s  self {own:.4f}s"
        )
        if extras:
            line += f"  [{extras}]"
        lines.append(line)
        if max_depth is not None and depth + 1 >= max_depth:
            return
        for child in children.get(str(span.get("span_id")), []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return lines


def render_summary(
    events: Sequence[Mapping[str, Any]], max_depth: Optional[int] = None
) -> str:
    """Full trace report: manifest header, span tree, metric counters."""
    manifest, spans, metrics = split_events(events)
    lines: List[str] = []
    if manifest is not None:
        git = str(manifest.get("git_sha") or "n/a")[:12]
        lines.append(
            f"manifest: config {manifest.get('config_hash', '?')}  "
            f"git {git}  seed {manifest.get('seed')}  "
            f"model {manifest.get('model') or 'n/a'}"
        )
    if spans:
        roots, children = build_tree(spans)
        root_total = sum(float(r.get("duration", 0.0)) for r in roots)
        lines.append(
            f"{len(spans)} spans, {len(roots)} root(s), "
            f"root total {root_total:.4f}s"
        )
        lines.extend(render_tree(spans, max_depth=max_depth))
    else:
        lines.append("(no spans recorded)")
    if metrics is not None:
        counters = metrics.get("counters") or {}
        if counters:
            rendered = "  ".join(
                f"{name}={counters[name]}" for name in sorted(counters)
            )
            lines.append(f"counters: {rendered}")
    return "\n".join(lines)


def summarize_path(
    path: PathLike,
    max_depth: Optional[int] = None,
    skip_partial_tail: bool = False,
) -> str:
    """Render the summary for a trace file.

    ``skip_partial_tail`` tolerates a truncated final line (trace
    still being written / writer crashed) by summarizing the complete
    prefix; see :func:`repro.telemetry.sinks.read_events`.
    """
    events = read_events(path, skip_partial_tail=skip_partial_tail)
    return render_summary(events, max_depth=max_depth)
