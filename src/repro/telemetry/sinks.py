"""Event schema, JSONL sink, and validation.

A trace file is JSON Lines: one event object per line, in merge-sorted
span-start order.  Three event types share a ``schema`` version tag:

``span``
    One record per span close — name, ids, monotonic start/end,
    duration, attributes, counters, status, and the worker label that
    produced it.
``manifest``
    The run manifest (config hash, git SHA, seed material, package
    versions); written first when present.
``metrics``
    The final metrics-registry snapshot; written last.

:func:`validate_event` checks any decoded event against this schema —
the CI telemetry smoke runs it over every line of a real trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from .spans import Span, merge_spans

#: Bumped whenever the event layout changes incompatibly.
SCHEMA_VERSION = 1

PathLike = Union[str, Path]

_EVENT_TYPES = ("span", "manifest", "metrics")
_SPAN_STATUSES = ("ok", "error")


def _plain(value: Any) -> Any:
    """Coerce attribute values to JSON-native types.

    numpy scalars leak into span attributes (fit slopes, sigmas); they
    are detected by their ``item()`` method so this module keeps its
    zero-dependency contract.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _plain(item())
        except (TypeError, ValueError):
            return str(value)
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return str(value)


def span_event(span: Span) -> Dict[str, Any]:
    """The JSONL record for one closed span."""
    return {
        "schema": SCHEMA_VERSION,
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": float(span.start),
        "end": float(span.end if span.end is not None else span.start),
        "duration": float(span.duration),
        "attributes": {k: _plain(v) for k, v in span.attributes.items()},
        "counters": {k: int(v) for k, v in span.counters.items()},
        "status": span.status,
        "worker": span.worker,
    }


def manifest_event(manifest: Mapping[str, Any]) -> Dict[str, Any]:
    """The JSONL record carrying the run manifest."""
    return {
        "schema": SCHEMA_VERSION,
        "type": "manifest",
        "manifest": _plain(dict(manifest)),
    }


def metrics_event(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """The JSONL record carrying the final metrics snapshot."""
    return {
        "schema": SCHEMA_VERSION,
        "type": "metrics",
        "metrics": _plain(dict(snapshot)),
    }


def spans_to_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Merge-sort spans (start, id) and convert to event records."""
    return [span_event(span) for span in merge_spans(spans)]


class JsonlSink:
    """Writes events to a ``.jsonl`` file, one object per line."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self.emitted = 0

    def emit(self, event: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_events(path: PathLike, events: Sequence[Mapping[str, Any]]) -> Path:
    """Write a full event sequence as one JSONL file."""
    with JsonlSink(path) as sink:
        for event in events:
            sink.emit(event)
    return Path(path)


def read_events(
    path: PathLike, skip_partial_tail: bool = False
) -> List[Dict[str, Any]]:
    """Decode every event line of a trace file.

    A final line without a trailing newline is a write still in flight
    (the process may have crashed or be mid-export); with
    ``skip_partial_tail`` such a line is dropped instead of raising,
    so tools can summarize a truncated trace's complete prefix.
    """
    events: List[Dict[str, Any]] = []
    with open(Path(path)) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if skip_partial_tail and not raw.endswith("\n"):
                    break
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
    return events


def _check_mapping(event: Mapping[str, Any], key: str, errors: List[str]) -> None:
    if not isinstance(event.get(key), Mapping):
        errors.append(f"{key!r} must be an object")


def validate_event(event: Any) -> List[str]:
    """Schema-check one decoded event; returns problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(event, Mapping):
        return ["event is not a JSON object"]
    if event.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION}, got {event.get('schema')!r}"
        )
    kind = event.get("type")
    if kind not in _EVENT_TYPES:
        errors.append(f"type must be one of {_EVENT_TYPES}, got {kind!r}")
        return errors
    if kind == "span":
        _validate_span(event, errors)
    elif kind == "manifest":
        _check_mapping(event, "manifest", errors)
    elif kind == "metrics":
        _check_mapping(event, "metrics", errors)
    return errors


def _validate_span(event: Mapping[str, Any], errors: List[str]) -> None:
    for key in ("name", "span_id", "worker"):
        value = event.get(key)
        if not isinstance(value, str) or not value:
            errors.append(f"{key!r} must be a non-empty string")
    parent = event.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        errors.append("'parent_id' must be a string or null")
    for key in ("start", "end", "duration"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{key!r} must be a number")
    start, end = event.get("start"), event.get("end")
    if isinstance(start, (int, float)) and isinstance(end, (int, float)):
        if end < start:
            errors.append("'end' precedes 'start'")
    if event.get("status") not in _SPAN_STATUSES:
        errors.append(
            f"'status' must be one of {_SPAN_STATUSES}, "
            f"got {event.get('status')!r}"
        )
    _check_mapping(event, "attributes", errors)
    counters = event.get("counters")
    if not isinstance(counters, Mapping):
        errors.append("'counters' must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"counter {name!r} must be an integer")


def validate_events(events: Sequence[Any]) -> List[str]:
    """Validate a whole trace; error strings are prefixed by index."""
    problems: List[str] = []
    for index, event in enumerate(events):
        for error in validate_event(event):
            problems.append(f"event {index}: {error}")
    return problems


def validate_path(path: PathLike) -> List[str]:
    """Read and validate a trace file end to end."""
    try:
        events = read_events(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not events:
        return [f"{path}: trace contains no events"]
    return validate_events(events)
