"""Per-span process-resource profiling: RSS, CPU time, threads, GC.

The tracer answers *where the wall clock went*; this module answers
*what the process paid for it* — resident memory, CPU seconds, thread
count, and garbage-collector activity — sampled at **stage boundaries
only** (a couple of ``/proc`` reads per stage), never inside numeric
inner loops, so every optimizer/quantizer output stays bit-identical
with profiling on or off.

Samples attach in two places:

* **Spans** — :meth:`ResourceProfiler.measure` brackets a stage and
  writes the deltas onto the open span as ``res_*`` attributes, so
  they land in the JSONL trace next to the timing they explain.
* **Manifests** — the profiler accumulates a per-stage summary
  (peak RSS, summed CPU) that :meth:`repro.telemetry.session.Telemetry.
  export` folds into the run manifest's ``resources`` field, giving
  every trace a "how much memory did each stage need" record.

Stdlib-only: Linux reads ``/proc/self/status`` (VmRSS/VmHWM);
elsewhere it falls back to ``resource.getrusage``.
"""

from __future__ import annotations

import gc
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from .spans import Span

_PROC_STATUS = "/proc/self/status"


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time reading of the process's resource state."""

    #: Current resident set size in bytes (0 when unavailable).
    rss_bytes: int
    #: Peak resident set size in bytes since process start.
    peak_rss_bytes: int
    #: User-mode CPU seconds consumed by the process so far.
    cpu_user_seconds: float
    #: Kernel-mode CPU seconds consumed by the process so far.
    cpu_system_seconds: float
    #: Live Python threads.
    num_threads: int
    #: Cumulative GC collection runs (all generations).
    gc_collections: int
    #: Cumulative objects collected by the GC (all generations).
    gc_collected: int

    @property
    def cpu_seconds(self) -> float:
        return self.cpu_user_seconds + self.cpu_system_seconds


def _proc_memory_bytes() -> Optional[Dict[str, int]]:
    """VmRSS/VmHWM from ``/proc`` (Linux), None elsewhere."""
    try:
        with open(_PROC_STATUS) as handle:
            text = handle.read()
    except OSError:
        return None
    values: Dict[str, int] = {}
    for line in text.splitlines():
        if line.startswith(("VmRSS:", "VmHWM:")):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                values[parts[0].rstrip(":")] = int(parts[1]) * 1024
    return values or None


def _rusage_peak_bytes() -> int:
    """Peak RSS via getrusage (kilobytes on Linux, bytes on macOS)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux; macOS reports bytes.  /proc normally
    # wins on Linux, so this branch mostly serves the fallback path.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - macOS only
        return int(peak)
    return int(peak) * 1024


def sample_resources() -> ResourceSample:
    """Read the current process resource state (cheap: two file reads)."""
    memory = _proc_memory_bytes()
    if memory is not None:
        rss = memory.get("VmRSS", 0)
        peak = memory.get("VmHWM", rss)
    else:  # pragma: no cover - non-Linux
        peak = _rusage_peak_bytes()
        rss = 0
    times = os.times()
    collections = 0
    collected = 0
    for generation in gc.get_stats():
        collections += int(generation.get("collections", 0))
        collected += int(generation.get("collected", 0))
    return ResourceSample(
        rss_bytes=int(rss),
        peak_rss_bytes=int(peak),
        cpu_user_seconds=float(times.user),
        cpu_system_seconds=float(times.system),
        num_threads=threading.active_count(),
        gc_collections=collections,
        gc_collected=collected,
    )


#: Any zero-argument callable returning a sample (tests inject fakes).
Sampler = Callable[[], ResourceSample]


class ResourceProfiler:
    """Brackets stages with before/after samples and keeps a summary.

    Disabled profilers (``enabled=False``) make :meth:`measure` a pure
    pass-through — no sampling, no locking — so instrumented code calls
    it unconditionally.
    """

    def __init__(
        self, enabled: bool = True, sampler: Optional[Sampler] = None
    ) -> None:
        self.enabled = enabled
        self._sampler: Sampler = sampler or sample_resources
        self._lock = threading.Lock()
        self._stages: Dict[str, Dict[str, Any]] = {}

    @contextmanager
    def measure(
        self, stage: str, span: Optional[Span] = None
    ) -> Iterator[None]:
        """Sample around a stage; annotate ``span`` and the summary.

        Re-entered stage names accumulate: CPU seconds and GC counts
        sum, peak RSS takes the max — so per-cell measurements under
        one name aggregate the way a manifest wants them.
        """
        if not self.enabled:
            yield
            return
        before = self._sampler()
        try:
            yield
        finally:
            after = self._sampler()
            record = {
                "peak_rss_bytes": int(after.peak_rss_bytes),
                "rss_delta_bytes": int(
                    after.rss_bytes - before.rss_bytes
                ),
                "cpu_seconds": float(
                    after.cpu_seconds - before.cpu_seconds
                ),
                "threads": int(after.num_threads),
                "gc_collections": int(
                    after.gc_collections - before.gc_collections
                ),
            }
            with self._lock:
                summary = self._stages.setdefault(
                    stage,
                    {
                        "peak_rss_bytes": 0,
                        "rss_delta_bytes": 0,
                        "cpu_seconds": 0.0,
                        "threads": 0,
                        "gc_collections": 0,
                        "measurements": 0,
                    },
                )
                summary["peak_rss_bytes"] = max(
                    int(summary["peak_rss_bytes"]),
                    record["peak_rss_bytes"],
                )
                summary["rss_delta_bytes"] = (
                    int(summary["rss_delta_bytes"])
                    + record["rss_delta_bytes"]
                )
                summary["cpu_seconds"] = (
                    float(summary["cpu_seconds"]) + record["cpu_seconds"]
                )
                summary["threads"] = max(
                    int(summary["threads"]), record["threads"]
                )
                summary["gc_collections"] = (
                    int(summary["gc_collections"])
                    + record["gc_collections"]
                )
                summary["measurements"] = int(summary["measurements"]) + 1
            if span is not None:
                span.set(
                    res_peak_rss_bytes=record["peak_rss_bytes"],
                    res_rss_delta_bytes=record["rss_delta_bytes"],
                    res_cpu_seconds=record["cpu_seconds"],
                    res_threads=record["threads"],
                    res_gc_collections=record["gc_collections"],
                )

    def stage(self, name: str) -> Optional[Dict[str, Any]]:
        """The accumulated record for one stage (None if never measured)."""
        with self._lock:
            record = self._stages.get(name)
            return dict(record) if record is not None else None

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage resource summary, stage names sorted (JSON-ready)."""
        with self._lock:
            return {
                name: dict(record)
                for name, record in sorted(self._stages.items())
            }


#: Shared disabled profiler for branch-free call sites.
NULL_RESOURCE_PROFILER = ResourceProfiler(enabled=False)
