"""Nested tracing spans with monotonic timing and per-span counters.

A :class:`Tracer` hands out :class:`Span` context managers.  Nesting is
tracked per thread (a ``threading.local`` span stack), so one tracer
can be shared by every worker thread of an injection campaign; each
thread builds its own ancestry while closed spans land in one
lock-protected buffer.  Process-pool workers run their own tracer and
ship the closed spans back with the task result; the parent merges them
via :meth:`Tracer.absorb`, re-parenting worker roots under the span
that dispatched the work.

The :class:`NullTracer` is the disabled path: its spans are created but
never timed (constant-zero clock) nor recorded, so instrumented code
runs unconditionally with near-zero overhead and — critically — zero
effect on any numerical result.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .clock import ClockFn, monotonic_clock

#: Allowed span-attribute value types (must stay JSON-representable).
Attribute = Union[str, int, float, bool, None]


@dataclass
class Span:
    """One timed operation: name, ancestry, attributes, counters."""

    name: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    attributes: Dict[str, Attribute] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    status: str = "ok"
    worker: str = "main"

    @property
    def duration(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Attribute) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a per-span counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount


class Tracer:
    """Produces nested spans and buffers them until export.

    Thread-safe: the span stack is thread-local (each worker thread
    nests independently) and the finished-span buffer appends under a
    lock.  Span ids are ``<worker>-<n>`` with a per-tracer counter, so
    merged buffers from distinct workers cannot collide as long as
    worker labels differ.
    """

    def __init__(self, clock: Optional[ClockFn] = None, worker: str = "main") -> None:
        self.clock: ClockFn = clock or monotonic_clock
        self.worker = worker
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return True

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(
        self,
        name: str,
        parent_id: Optional[str] = None,
        **attributes: Attribute,
    ) -> Iterator[Span]:
        """Open a nested span; it closes (and is recorded) on exit.

        ``parent_id`` overrides the ambient parent — pool workers use it
        to hang their root span under the dispatching stage, because a
        fresh worker thread starts with an empty span stack.
        """
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        with self._lock:
            span_id = f"{self.worker}-{next(self._ids)}"
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=self.clock(),
            attributes=dict(attributes),
            worker=self.worker,
        )
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end = self.clock()
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # unbalanced exit; keep the stack sane
                stack.remove(span)
            with self._lock:
                self._finished.append(span)

    def events(self) -> List[Span]:
        """A snapshot of every closed span so far."""
        with self._lock:
            return list(self._finished)

    def absorb(
        self, spans: Sequence[Span], parent_id: Optional[str] = None
    ) -> None:
        """Merge spans recorded by a worker tracer into this buffer.

        Worker-root spans (``parent_id is None``) are re-parented under
        ``parent_id`` so the merged trace stays one connected tree.
        """
        with self._lock:
            for span in spans:
                if parent_id is not None and span.parent_id is None:
                    span.parent_id = parent_id
                self._finished.append(span)

    def clear(self) -> None:
        """Drop all buffered spans (tests and repeated exports)."""
        with self._lock:
            self._finished.clear()


def _zero_clock() -> float:
    return 0.0


class NullTracer(Tracer):
    """The disabled tracer: spans open and close but nothing records."""

    def __init__(self) -> None:
        super().__init__(clock=_zero_clock, worker="null")

    @property
    def enabled(self) -> bool:
        return False

    @contextmanager
    def span(
        self,
        name: str,
        parent_id: Optional[str] = None,
        **attributes: Attribute,
    ) -> Iterator[Span]:
        yield Span(name=name, span_id="", parent_id=None, worker="null")


#: Shared inert tracer; instrumented code falls back to it when no real
#: tracer was injected, keeping call sites branch-free.
NULL_TRACER = NullTracer()


def merge_spans(spans: Sequence[Span]) -> List[Span]:
    """Deterministic export order: by start time, ties by span id.

    Worker buffers merged via :meth:`Tracer.absorb` arrive grouped per
    worker; sorting restores one stable global timeline (monotonic
    clocks share an origin across processes on Linux).
    """
    return sorted(spans, key=lambda s: (s.start, s.span_id, s.name))
