"""Injectable clocks for the telemetry layer.

Every timestamp the tracer records flows through a ``ClockFn`` so tests
can drive spans with a :class:`FakeClock` and assert exact durations.
Production tracers default to :func:`time.perf_counter`, which on Linux
reads ``CLOCK_MONOTONIC`` — a *system-wide* monotonic clock, so span
start times recorded in different worker processes are directly
comparable when the per-worker buffers are merged at join.
"""

from __future__ import annotations

import time
from typing import Callable

#: Any zero-argument callable returning monotonic seconds.
ClockFn = Callable[[], float]

#: The production clock (system-wide monotonic on Linux).
monotonic_clock: ClockFn = time.perf_counter


def wall_time() -> float:
    """Unix wall-clock seconds (manifests only, never span math)."""
    return time.time()


class FakeClock:
    """A deterministic clock for tests.

    Each call returns the current value and then advances by ``tick``
    (0 by default, i.e. frozen until :meth:`advance` is called).
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._now = float(start)
        self._tick = float(tick)

    def __call__(self) -> float:
        now = self._now
        self._now += self._tick
        return now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("FakeClock cannot move backwards")
        self._now += float(seconds)

    @property
    def now(self) -> float:
        """Current reading without advancing."""
        return self._now
