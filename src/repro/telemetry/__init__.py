"""Zero-dependency observability: tracing, metrics, manifests, sinks.

The package is stdlib-only by design — it must import (and lint) in
environments without the numeric stack.  Entry points:

- :class:`Telemetry` — the per-run session bundling a tracer, a
  metrics registry, and a run manifest; built from
  :class:`repro.config.TelemetrySettings`.
- :class:`Tracer` / :func:`~Tracer.span` — nested spans with
  monotonic timing, attributes, and per-span counters.
- :class:`MetricsRegistry` — counters, gauges, fixed-bucket
  histograms; Prometheus text export.
- :mod:`~repro.telemetry.sinks` — JSONL event sink + schema
  validation; :mod:`~repro.telemetry.summarize` — span-tree reports.
- :func:`build_manifest` — config hash, git SHA, seeds, versions.
- :class:`EventBus` / :func:`open_event_bus` — live append-only
  lifecycle events tailed by ``repro monitor``
  (:mod:`~repro.telemetry.live`).
- :class:`ResourceProfiler` — stage-boundary RSS/CPU/GC sampling
  attached to spans and manifests.
"""

from ..config import TelemetrySettings
from .clock import ClockFn, FakeClock, monotonic_clock, wall_time
from .events import (
    CELL_STATES,
    EVENTS_FILE,
    EVENTS_SCHEMA_VERSION,
    NULL_EVENT_BUS,
    RUN_STATES,
    EventBus,
    EventTail,
    NullEventBus,
    discover_event_files,
    new_run_id,
    open_event_bus,
    read_bus_events,
    validate_bus_event,
    validate_bus_path,
)
from .live import (
    CellView,
    MetricsEndpoint,
    MonitorState,
    RunMonitor,
    render_status,
    update_metrics,
)
from .manifest import (
    RunManifest,
    build_manifest,
    config_hash,
    git_revision,
    package_versions,
)
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .resources import (
    NULL_RESOURCE_PROFILER,
    ResourceProfiler,
    ResourceSample,
    sample_resources,
)
from .session import Telemetry
from .sinks import (
    SCHEMA_VERSION,
    JsonlSink,
    manifest_event,
    metrics_event,
    read_events,
    span_event,
    spans_to_events,
    validate_event,
    validate_events,
    validate_path,
    write_events,
)
from .spans import NULL_TRACER, NullTracer, Span, Tracer, merge_spans
from .summarize import (
    build_tree,
    render_summary,
    render_tree,
    self_time,
    split_events,
    summarize_path,
)

__all__ = [
    "ClockFn",
    "FakeClock",
    "monotonic_clock",
    "wall_time",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "merge_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "Telemetry",
    "TelemetrySettings",
    "RunManifest",
    "build_manifest",
    "config_hash",
    "git_revision",
    "package_versions",
    "SCHEMA_VERSION",
    "JsonlSink",
    "span_event",
    "manifest_event",
    "metrics_event",
    "spans_to_events",
    "write_events",
    "read_events",
    "validate_event",
    "validate_events",
    "validate_path",
    "build_tree",
    "render_summary",
    "render_tree",
    "self_time",
    "split_events",
    "summarize_path",
    "EVENTS_SCHEMA_VERSION",
    "EVENTS_FILE",
    "CELL_STATES",
    "RUN_STATES",
    "EventBus",
    "NullEventBus",
    "NULL_EVENT_BUS",
    "EventTail",
    "new_run_id",
    "open_event_bus",
    "read_bus_events",
    "discover_event_files",
    "validate_bus_event",
    "validate_bus_path",
    "ResourceProfiler",
    "ResourceSample",
    "NULL_RESOURCE_PROFILER",
    "sample_resources",
    "CellView",
    "MonitorState",
    "RunMonitor",
    "MetricsEndpoint",
    "render_status",
    "update_metrics",
]
