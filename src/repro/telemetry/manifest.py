"""Run manifests: what exact configuration produced a result.

Every pipeline run (and benchmark payload) carries a manifest so a
number in ``BENCH_profiler.json`` or a Table II row can be traced back
to the config hash, git revision, seed material, model, and package
versions that produced it.  Manifests are default-on — they cost one
hash and one (gated) ``git rev-parse`` — unlike tracing, which is
opt-in via :class:`repro.config.TelemetrySettings`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from importlib import import_module
from typing import Any, Dict, Mapping, Optional


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable short hash of a configuration mapping.

    Canonical JSON (sorted keys, ``str()`` fallback for exotic values)
    keeps the hash independent of dict insertion order.
    """
    canonical = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def package_versions() -> Dict[str, str]:
    """Versions of the interpreter and the numeric stack (if present)."""
    versions = {"python": platform.python_version()}
    for module_name in ("numpy", "scipy"):
        try:
            module = import_module(module_name)
        except ImportError:
            continue
        version = getattr(module, "__version__", None)
        if version is not None:
            versions[module_name] = str(version)
    return versions


@dataclass
class RunManifest:
    """Provenance record attached to pipeline runs and benchmark JSON."""

    config_hash: str
    seed: Optional[int] = None
    model: Optional[str] = None
    git_sha: Optional[str] = None
    versions: Dict[str, str] = field(default_factory=dict)
    created_at: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    #: Per-stage resource summary (peak RSS, CPU seconds, ...) folded
    #: in at export time by :meth:`repro.telemetry.session.Telemetry.
    #: export`.  Provenance only — never part of the config hash.
    resources: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """One-line human summary for reports."""
        git = (self.git_sha or "n/a")[:12]
        numpy_version = self.versions.get("numpy", "?")
        return (
            f"config {self.config_hash}  git {git}  seed {self.seed}  "
            f"model {self.model or 'n/a'}  numpy {numpy_version}"
        )


def build_manifest(
    config: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
    model: Optional[str] = None,
    include_git: bool = True,
) -> RunManifest:
    """Assemble the manifest for a run.

    ``config`` is any JSON-able mapping of the knobs that determine the
    run's outputs; its hash is the manifest's primary identity.  Seed
    and model are lifted out as first-class fields because they are the
    two most-queried provenance facts.
    """
    plain_config: Dict[str, Any] = dict(config or {})
    if seed is not None and "seed" not in plain_config:
        plain_config["seed"] = seed
    if model is not None and "model" not in plain_config:
        plain_config["model"] = model
    return RunManifest(
        config_hash=config_hash(plain_config),
        seed=seed,
        model=model,
        git_sha=git_revision() if include_git else None,
        versions=package_versions(),
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        config=plain_config,
    )
