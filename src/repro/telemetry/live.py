"""Live run monitoring: tail the event bus, render progress, serve /metrics.

Backs ``repro monitor <run-dir>``: while a ``repro sweep`` / ``repro
ablate`` (or any other bus-emitting run) is still executing, this
module tails its ``events*.jsonl`` files (:class:`~repro.telemetry.
events.EventTail` consumes only newline-complete records, so mid-write
files are safe) and folds every lifecycle event into a
:class:`MonitorState`: per-cell states, progress, ETA, straggler cells,
cache hit-rate, and retry counts.

Two consumers:

* :func:`render_status` — the human terminal view, re-rendered per
  poll.
* :func:`update_metrics` — the same state projected onto a
  :class:`~repro.telemetry.metrics.MetricsRegistry`, served by
  :class:`MetricsEndpoint` (a stdlib ``http.server`` thread) as a
  Prometheus text exposition at ``/metrics`` for scraping.  This is
  the groundwork for the serving layer and distributed sweeps: any
  process that can write bus events is scrapable through one port.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .clock import wall_time
from .events import (
    CELL_STATES,
    EventTail,
    discover_event_files,
)
from .metrics import MetricsRegistry

PathLike = Union[str, Path]

#: Cell states that mean "this cell will not run again".
TERMINAL_STATES = ("done", "failed")


class CellView:
    """The latest observed lifecycle of one cell."""

    __slots__ = (
        "cell_id", "state", "queued_ts", "running_ts",
        "finished_ts", "cached", "attrs",
    )

    def __init__(self, cell_id: str) -> None:
        self.cell_id = cell_id
        self.state = "queued"
        self.queued_ts: Optional[float] = None
        self.running_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None
        self.cached = False
        self.attrs: Dict[str, Any] = {}

    @property
    def duration(self) -> Optional[float]:
        """Running→terminal seconds (None while still in flight)."""
        if self.running_ts is None or self.finished_ts is None:
            return None
        return max(0.0, self.finished_ts - self.running_ts)

    def elapsed(self, now: float) -> Optional[float]:
        """Seconds a *running* cell has been in flight."""
        if self.state != "running" or self.running_ts is None:
            return None
        return max(0.0, now - self.running_ts)


class MonitorState:
    """Aggregate view of every event observed so far."""

    def __init__(self) -> None:
        self.cells: Dict[str, CellView] = {}
        self.stages: Dict[str, Dict[str, int]] = {}
        #: run_id -> "started" | "finished"
        self.runs: Dict[str, str] = {}
        self.run_attrs: Dict[str, Dict[str, Any]] = {}
        self.total_cells = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.events_seen = 0
        self.last_ts: Optional[float] = None
        self.invalid_events = 0
        #: Events dropped because their (run_id, seq) identity was
        #: already folded in — re-reads after a tail reset, or the same
        #: shard reached through two discovered paths.
        self.duplicate_events = 0
        self._seen_ids: set = set()

    # ------------------------------------------------------------------
    def apply(self, event: Mapping[str, Any]) -> None:
        """Fold one decoded bus event into the state.

        Idempotent per event: ``(run_id, seq)`` uniquely identifies a
        bus record across every emitter of a (possibly multi-writer)
        run, so replayed deliveries — a tail that reset after file
        truncation, one shard discovered twice — fold in exactly once.
        """
        kind = event.get("type")
        state = event.get("event")
        if not isinstance(kind, str) or not isinstance(state, str):
            self.invalid_events += 1
            return
        seq = event.get("seq")
        event_run_id = event.get("run_id")
        if (
            isinstance(event_run_id, str)
            and isinstance(seq, int)
            and not isinstance(seq, bool)
        ):
            identity = (event_run_id, seq)
            if identity in self._seen_ids:
                self.duplicate_events += 1
                return
            self._seen_ids.add(identity)
        ts = event.get("ts")
        ts = float(ts) if isinstance(ts, (int, float)) else None
        attrs = event.get("attrs")
        attrs = dict(attrs) if isinstance(attrs, Mapping) else {}
        self.events_seen += 1
        if ts is not None and (self.last_ts is None or ts > self.last_ts):
            self.last_ts = ts
        if kind == "run":
            run_id = str(event.get("run_id", ""))
            self.runs[run_id] = state
            self.run_attrs.setdefault(run_id, {}).update(attrs)
            if state == "started":
                self.total_cells += int(attrs.get("total_cells", 0) or 0)
            return
        name = str(event.get("name", ""))
        if not name:
            self.invalid_events += 1
            return
        if kind == "stage":
            counts = self.stages.setdefault(name, {})
            counts[state] = counts.get(state, 0) + 1
            self.retries += int(attrs.get("retries", 0) or 0)
            return
        if kind != "cell" or state not in CELL_STATES:
            self.invalid_events += 1
            return
        view = self.cells.get(name)
        if view is None:
            view = self.cells[name] = CellView(name)
        if state == "queued":
            view.queued_ts = ts
            if view.state not in TERMINAL_STATES:
                view.state = "queued"
        elif state == "running":
            view.running_ts = ts
            if view.state not in TERMINAL_STATES:
                view.state = "running"
        elif state == "cached-hit":
            view.cached = True
        else:  # done / failed
            view.state = state
            view.finished_ts = ts
        view.attrs.update(attrs)
        self.cache_hits += int(attrs.get("cache_hits", 0) or 0)
        self.cache_misses += int(attrs.get("cache_misses", 0) or 0)
        self.retries += int(attrs.get("retries", 0) or 0)

    # Derived views ----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Cells per current state (all CELL_STATES keys present)."""
        out = {state: 0 for state in CELL_STATES}
        for view in self.cells.values():
            out[view.state] = out.get(view.state, 0) + 1
        out["cached-hit"] = sum(1 for v in self.cells.values() if v.cached)
        return out

    @property
    def known_total(self) -> int:
        """Best-known total cell count (announced, else observed)."""
        return max(self.total_cells, len(self.cells))

    @property
    def workers(self) -> Dict[str, str]:
        """run_id -> lifecycle state of every attached sweep worker.

        Distributed-sweep workers announce themselves with
        ``run_started(kind="worker", total_cells=0)`` on their own
        event shard; only the coordinator announces the real total, so
        worker attach/detach never perturbs the progress denominator.
        """
        return {
            run_id: state
            for run_id, state in self.runs.items()
            if self.run_attrs.get(run_id, {}).get("kind") == "worker"
        }

    @property
    def active_workers(self) -> int:
        """Workers that attached and have not yet finished."""
        return sum(
            1 for state in self.workers.values() if state == "started"
        )

    @property
    def completed(self) -> int:
        return sum(
            1 for v in self.cells.values() if v.state in TERMINAL_STATES
        )

    @property
    def finished(self) -> bool:
        """Every started run emitted ``finished`` (and at least one ran)."""
        return bool(self.runs) and all(
            state == "finished" for state in self.runs.values()
        )

    def progress(self) -> Tuple[int, int]:
        return self.completed, self.known_total

    def cache_hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return None
        return self.cache_hits / total

    def mean_cell_seconds(self) -> Optional[float]:
        durations = [
            view.duration
            for view in self.cells.values()
            if view.duration is not None
        ]
        if not durations:
            return None
        return sum(durations) / len(durations)

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Naive remaining-work estimate from mean finished-cell time.

        Running cells count their already-elapsed time against the
        estimate; cached cells finish near-instantly and drag the mean
        down, which is exactly right for warm re-runs.
        """
        mean = self.mean_cell_seconds()
        if mean is None:
            return None
        now = wall_time() if now is None else now
        remaining = max(0, self.known_total - self.completed)
        if remaining == 0:
            return 0.0
        estimate = 0.0
        accounted = 0
        for view in self.cells.values():
            elapsed = view.elapsed(now)
            if elapsed is not None:
                estimate += max(0.0, mean - elapsed)
                accounted += 1
        estimate += mean * max(0, remaining - accounted)
        return estimate

    def stragglers(
        self, now: Optional[float] = None, factor: float = 3.0
    ) -> List[Tuple[str, float]]:
        """Running cells slower than ``factor`` x the mean cell time."""
        mean = self.mean_cell_seconds()
        if mean is None or mean <= 0:
            return []
        now = wall_time() if now is None else now
        slow: List[Tuple[str, float]] = []
        for view in self.cells.values():
            elapsed = view.elapsed(now)
            if elapsed is not None and elapsed > factor * mean:
                slow.append((view.cell_id, elapsed))
        slow.sort(key=lambda item: -item[1])
        return slow


# ----------------------------------------------------------------------
class RunMonitor:
    """Tails every bus file of a run directory into one state."""

    def __init__(self, run_dir: PathLike) -> None:
        self.run_dir = Path(run_dir)
        self.state = MonitorState()
        self._tails: Dict[Path, EventTail] = {}

    def poll(self) -> int:
        """Discover new files, consume new events; returns events applied."""
        applied = 0
        for path in discover_event_files(self.run_dir):
            tail = self._tails.get(path)
            if tail is None:
                tail = self._tails[path] = EventTail(path)
            for event in tail.poll():
                self.state.apply(event)
                applied += 1
        return applied

    @property
    def num_files(self) -> int:
        return len(self._tails)


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_status(
    state: MonitorState,
    now: Optional[float] = None,
    straggler_factor: float = 3.0,
    width: int = 30,
) -> str:
    """The human status block for one poll."""
    now = wall_time() if now is None else now
    counts = state.counts()
    done, total = state.progress()
    lines: List[str] = []
    workers = state.workers
    run_bits = []
    for run_id, run_state in sorted(state.runs.items()):
        if run_id in workers:
            continue  # summarized on their own line below
        kind = state.run_attrs.get(run_id, {}).get("kind", "run")
        run_bits.append(f"{kind}:{run_id[:8]} {run_state}")
    lines.append(
        "runs: " + (", ".join(run_bits) if run_bits else "(none seen yet)")
    )
    if workers:
        names = sorted(
            str(state.run_attrs.get(run_id, {}).get("worker", run_id[:8]))
            for run_id, run_state in workers.items()
            if run_state == "started"
        )
        active_text = (
            f" ({', '.join(names[:8])}"
            + ("..." if len(names) > 8 else "")
            + ")"
            if names
            else ""
        )
        lines.append(
            f"workers: {len(workers)} attached, "
            f"{state.active_workers} active{active_text}"
        )
    ratio = done / total if total else 0.0
    filled = int(round(ratio * width))
    bar = "#" * filled + "-" * (width - filled)
    eta = state.eta_seconds(now)
    eta_text = (
        "ETA n/a" if eta is None else f"ETA {_format_seconds(eta)}"
    )
    if state.finished:
        eta_text = "finished"
    lines.append(f"progress [{bar}] {done}/{total} cells  {eta_text}")
    lines.append(
        "cells: "
        + "  ".join(
            f"{name}={counts[name]}"
            for name in ("queued", "running", "done", "failed", "cached-hit")
        )
    )
    rate = state.cache_hit_rate()
    rate_text = "n/a" if rate is None else f"{rate:.1%}"
    lines.append(
        f"cache: {state.cache_hits} hits / {state.cache_misses} misses "
        f"(hit rate {rate_text})  retries: {state.retries}"
    )
    running = [
        (view.cell_id, view.elapsed(now) or 0.0)
        for view in state.cells.values()
        if view.state == "running"
    ]
    running.sort(key=lambda item: -item[1])
    for cell_id, elapsed in running[:6]:
        lines.append(f"  running {cell_id}  {_format_seconds(elapsed)}")
    slow = state.stragglers(now, factor=straggler_factor)
    if slow:
        mean = state.mean_cell_seconds() or 0.0
        lines.append(
            f"stragglers (>{straggler_factor:g}x mean "
            f"{_format_seconds(mean)}):"
        )
        for cell_id, elapsed in slow[:6]:
            lines.append(f"  {cell_id}  {_format_seconds(elapsed)}")
    failed = [
        view for view in state.cells.values() if view.state == "failed"
    ]
    for view in failed[:6]:
        error = view.attrs.get("error_class", "?")
        lines.append(f"  FAILED {view.cell_id}  ({error})")
    if state.last_ts is not None:
        age = max(0.0, now - state.last_ts)
        lines.append(
            f"{state.events_seen} events; last "
            f"{_format_seconds(age)} ago"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def update_metrics(
    state: MonitorState, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Project the monitor state onto a metrics registry.

    Everything is exported as gauges: a monitor scrape is a snapshot of
    *someone else's* run, so monotonic-counter semantics belong to the
    emitting process, not this view.
    """
    registry = registry or MetricsRegistry()
    counts = state.counts()
    for name in ("queued", "running", "done", "failed"):
        registry.gauge(f"repro_monitor_cells_{name}").set(counts[name])
    registry.gauge("repro_monitor_cells_cached").set(counts["cached-hit"])
    registry.gauge("repro_monitor_cells_total").set(state.known_total)
    registry.gauge("repro_monitor_cache_hits").set(state.cache_hits)
    registry.gauge("repro_monitor_cache_misses").set(state.cache_misses)
    registry.gauge("repro_monitor_retries").set(state.retries)
    registry.gauge("repro_monitor_events_seen").set(state.events_seen)
    registry.gauge("repro_monitor_duplicate_events").set(
        state.duplicate_events
    )
    registry.gauge("repro_monitor_workers_attached").set(
        len(state.workers)
    )
    registry.gauge("repro_monitor_workers_active").set(
        state.active_workers
    )
    registry.gauge("repro_monitor_run_finished").set(
        1.0 if state.finished else 0.0
    )
    done, total = state.progress()
    registry.gauge("repro_monitor_progress_ratio").set(
        done / total if total else 0.0
    )
    eta = state.eta_seconds()
    if eta is not None:
        registry.gauge("repro_monitor_eta_seconds").set(eta)
    return registry


class MetricsEndpoint:
    """A stdlib HTTP thread serving ``GET /metrics`` for scraping.

    ``render`` is called per request, so the payload always reflects
    the live state.  ``port=0`` binds an ephemeral port (tests, and
    "just give me a port" CLI usage); the bound port is in
    :attr:`port` after construction.
    """

    def __init__(
        self,
        render: "Any",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    payload = str(endpoint.render()).encode("utf-8")
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    # pragma: no cover - defensive
                    self.send_error(500, f"render failed: {exc}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the monitor output

        self.render = render
        self.server = ThreadingHTTPServer((host, port), Handler)
        self.host = host
        self.port = int(self.server.server_address[1])
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsEndpoint":
        thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-metrics-endpoint",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
