"""Append-only JSONL event bus for *live* run observability.

Traces (:mod:`repro.telemetry.sinks`) are written once, at the end of a
run — useful post-hoc, useless while a multi-hour sweep is still going.
The event bus is the live counterpart: long-running surfaces (the sweep
scheduler, the ablation runner, the engine worker pools) append one
small JSON object per lifecycle transition as it happens, and
``repro monitor`` tails the file(s) to render progress, ETA, straggler
cells, and cache hit-rates mid-run.

Event kinds and lifecycle states:

``run``
    ``started`` / ``finished`` — one pair per emitting run, carrying
    the total cell count and summary attributes.
``cell``
    ``queued`` → ``running`` → (``cached-hit``) → ``done`` | ``failed``
    — one grid/campaign cell; attributes carry cache hit/miss deltas,
    elapsed seconds, and peak memory.
``stage``
    Same states for engine-internal stages (per-layer injection tasks,
    reference/replay phases), plus transient-retry accounting.

Write-side guarantees:

* **Atomic line writes.**  The file is opened ``O_APPEND`` and every
  event is a single ``os.write`` of one newline-terminated line, so
  concurrent emitters — worker pools, several optimizers of one sweep,
  even separate processes — interleave at line granularity, never
  mid-line.  A reader can only ever observe a partial *final* line
  (mid-write), which :func:`read_bus_events` skips by default.
* **Schema-versioned and validated.**  Every record carries
  ``schema``; :func:`validate_bus_event` checks decoded events the same
  way trace events are checked.
* **Off the numeric hot path.**  Events are emitted at cell/stage
  boundaries only; numerical results are bit-identical with the bus on
  or off.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import uuid
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .clock import ClockFn, wall_time
from .sinks import _plain

#: Bumped whenever the bus-event layout changes incompatibly.
EVENTS_SCHEMA_VERSION = 1

#: Default event-file name inside a run directory.
EVENTS_FILE = "events.jsonl"

#: Cell/stage lifecycle states, in nominal order.
CELL_STATES = ("queued", "running", "cached-hit", "done", "failed")

#: Run lifecycle states.
RUN_STATES = ("started", "finished")

_EVENT_KINDS = ("run", "cell", "stage")

PathLike = Union[str, Path]


def new_run_id() -> str:
    """A short unique id naming one emitting run."""
    return uuid.uuid4().hex[:12]


class EventBus:
    """Appends lifecycle events to one JSONL file, one atomic line each.

    Thread-safe; multiple instances (including in other processes) may
    append to the same file concurrently — ``O_APPEND`` plus
    single-``write`` lines keep every record intact.  ``(run_id, seq)``
    uniquely identifies an event across all emitters.
    """

    def __init__(
        self,
        path: PathLike,
        run_id: Optional[str] = None,
        clock: Optional[ClockFn] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or new_run_id()
        self._clock: ClockFn = clock or wall_time
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def emit(
        self, kind: str, event: str, name: str = "", /, **attrs: Any
    ) -> Dict[str, Any]:
        """Append one event record; returns the record as written.

        The first three parameters are positional-only so attribute
        names like ``kind`` stay usable in ``**attrs``.
        """
        if kind not in _EVENT_KINDS:
            raise ValueError(
                f"event kind must be one of {_EVENT_KINDS}, got {kind!r}"
            )
        states = RUN_STATES if kind == "run" else CELL_STATES
        if event not in states:
            raise ValueError(
                f"{kind} event must be one of {states}, got {event!r}"
            )
        record: Dict[str, Any] = {
            "schema": EVENTS_SCHEMA_VERSION,
            "type": kind,
            "event": event,
            "name": str(name),
            "run_id": self.run_id,
            "ts": float(self._clock()),
            "attrs": {str(k): _plain(v) for k, v in attrs.items()},
        }
        with self._lock:
            if self._fd is None:
                raise ValueError(f"event bus {self.path} is closed")
            record["seq"] = next(self._seq)
            line = json.dumps(record, sort_keys=True) + "\n"
            os.write(self._fd, line.encode("utf-8"))
            self.emitted += 1
        return record

    # Convenience emitters ---------------------------------------------
    def run_started(self, total_cells: int = 0, **attrs: Any) -> None:
        self.emit("run", "started", total_cells=int(total_cells), **attrs)

    def run_finished(self, **attrs: Any) -> None:
        self.emit("run", "finished", **attrs)

    def cell(self, event: str, cell_id: str, /, **attrs: Any) -> None:
        self.emit("cell", event, cell_id, **attrs)

    def stage(self, event: str, stage: str, /, **attrs: Any) -> None:
        self.emit("stage", event, stage, **attrs)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullEventBus(EventBus):
    """The disabled bus: accepts every emit, writes nothing.

    Instrumented code calls the bus unconditionally; a run without an
    events directory simply routes through this inert instance.
    """

    def __init__(self) -> None:  # deliberately no super().__init__
        self.path = Path(os.devnull)
        self.run_id = "null"
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return False

    def emit(
        self, kind: str, event: str, name: str = "", /, **attrs: Any
    ) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass


#: Shared inert bus; call sites stay branch-free.
NULL_EVENT_BUS = NullEventBus()


def open_event_bus(
    directory: Union[None, str, Path],
    filename: str = EVENTS_FILE,
    run_id: Optional[str] = None,
    clock: Optional[ClockFn] = None,
) -> EventBus:
    """An :class:`EventBus` under ``directory``, or the null bus.

    ``None``/"" disables emission (returns :data:`NULL_EVENT_BUS`); a
    path creates the directory and appends to ``<directory>/<filename>``.
    """
    if not directory:
        return NULL_EVENT_BUS
    return EventBus(Path(directory) / filename, run_id=run_id, clock=clock)


# ----------------------------------------------------------------------
# Read side: whole-file decode, incremental tailing, validation.
# ----------------------------------------------------------------------
def read_bus_events(
    path: PathLike, skip_partial_tail: bool = True
) -> List[Dict[str, Any]]:
    """Decode every complete event line of a bus file.

    A final line without a trailing newline is a write in progress;
    with ``skip_partial_tail`` (the default — the live-monitoring
    contract) it is silently ignored, otherwise it raises
    :class:`ValueError` like any other corrupt line.
    """
    text = Path(path).read_bytes().decode("utf-8", errors="replace")
    events: List[Dict[str, Any]] = []
    lines = text.split("\n")
    tail = lines[-1]
    for lineno, line in enumerate(lines[:-1], start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
    if tail.strip():
        try:
            events.append(json.loads(tail))
        except json.JSONDecodeError as exc:
            if not skip_partial_tail:
                raise ValueError(
                    f"{path}:{len(lines)}: truncated trailing line "
                    f"(file still being written?): {exc}"
                ) from exc
    return events


class EventTail:
    """Incremental reader over one growing bus file.

    Each :meth:`poll` returns the events appended since the last poll,
    never re-reading old bytes.  Only byte ranges ending in a newline
    are consumed, so a partial trailing line stays pending until its
    writer finishes it.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.offset = 0

    def poll(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() < self.offset:
                    # The file shrank underneath us (truncated or
                    # replaced — e.g. a run directory reused for a
                    # fresh run).  Restart from the top rather than
                    # reading from a stale offset past EOF forever.
                    self.offset = 0
                handle.seek(self.offset)
                chunk = handle.read()
        except OSError:
            return []
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        complete, self.offset = chunk[: cut + 1], self.offset + cut + 1
        events: List[Dict[str, Any]] = []
        for raw in complete.split(b"\n"):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                # A torn or corrupt interior line: skip it rather than
                # kill the monitor — live views must survive partial
                # files.
                continue
        return events


def discover_event_files(run_dir: PathLike) -> List[Path]:
    """The bus files of a run directory (or a single file path).

    A directory matches ``events*.jsonl`` (distributed runs may shard
    one file per worker); a file path is returned as-is.
    """
    root = Path(run_dir)
    if root.is_file():
        return [root]
    if not root.is_dir():
        return []
    return sorted(root.glob("events*.jsonl"))


def validate_bus_event(event: Any) -> List[str]:
    """Schema-check one decoded bus event; returns problems."""
    errors: List[str] = []
    if not isinstance(event, Mapping):
        return ["event is not a JSON object"]
    if event.get("schema") != EVENTS_SCHEMA_VERSION:
        errors.append(
            f"schema must be {EVENTS_SCHEMA_VERSION}, "
            f"got {event.get('schema')!r}"
        )
    kind = event.get("type")
    if kind not in _EVENT_KINDS:
        errors.append(f"type must be one of {_EVENT_KINDS}, got {kind!r}")
        return errors
    states = RUN_STATES if kind == "run" else CELL_STATES
    if event.get("event") not in states:
        errors.append(
            f"event must be one of {states}, got {event.get('event')!r}"
        )
    if not isinstance(event.get("name"), str):
        errors.append("'name' must be a string")
    if kind in ("cell", "stage") and not event.get("name"):
        errors.append(f"{kind} events need a non-empty 'name'")
    run_id = event.get("run_id")
    if not isinstance(run_id, str) or not run_id:
        errors.append("'run_id' must be a non-empty string")
    seq = event.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        errors.append("'seq' must be a positive integer")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        errors.append("'ts' must be a number")
    if not isinstance(event.get("attrs"), Mapping):
        errors.append("'attrs' must be an object")
    return errors


def validate_bus_path(path: PathLike) -> List[str]:
    """Read and validate a bus file end to end (partial tail allowed)."""
    try:
        events = read_bus_events(path, skip_partial_tail=True)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not events:
        return [f"{path}: event bus contains no events"]
    problems: List[str] = []
    for index, event in enumerate(events):
        for error in validate_bus_event(event):
            problems.append(f"event {index}: {error}")
    return problems
