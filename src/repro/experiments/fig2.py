"""Figure 2 driver: cross-layer linearity validation.

For each analyzed layer of a network, collect the (sigma_{Y_K->L},
Delta_XK) measurement pairs and the fitted line, and report the
prediction quality — the paper's claim is "< 5% error mostly, about 10%
in the worst case".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass
class LinearitySeries:
    """One layer's line in Fig. 2."""

    layer: str
    sigmas: np.ndarray
    deltas: np.ndarray
    lam: float
    theta: float
    r_squared: float
    max_relative_error: float


@dataclass
class Fig2Result:
    """All series for one network."""

    model: str
    series: List[LinearitySeries]

    @property
    def worst_relative_error(self) -> float:
        return max(s.max_relative_error for s in self.series)

    @property
    def median_relative_error(self) -> float:
        return float(
            np.median([s.max_relative_error for s in self.series])
        )

    def summary_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "layer": s.layer,
                "lambda": s.lam,
                "theta": s.theta,
                "R^2": s.r_squared,
                "max_rel_err": s.max_relative_error,
            }
            for s in self.series
        ]


def run_fig2(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> Fig2Result:
    """Measure the linear relationship for every analyzed layer."""
    context = context or make_context(config)
    report = context.optimizer.profile()
    series = [
        LinearitySeries(
            layer=p.name,
            sigmas=p.sigmas,
            deltas=p.deltas,
            lam=p.lam,
            theta=p.theta,
            r_squared=p.r_squared,
            max_relative_error=p.max_relative_error,
        )
        for p in report
    ]
    return Fig2Result(model=context.config.model, series=series)
