"""Distributed sweep execution: work-stealing workers over the shared store.

The incremental scheduler (:mod:`repro.experiments.scheduler`) removes
*rework* from a sweep; this module removes the *single process*.  A
distributed sweep is a directory — the **run directory**, typically
inside or beside the content-addressed store — that any number of
worker processes, on any number of hosts sharing that filesystem,
attach to:

``sweep-plan.json``
    The grid (``SweepSpec``), the substrate configuration
    (``ExperimentConfig``), and a fingerprint over every
    result-determining field (selected via the key-field registry).  A
    worker refuses to attach when its plan's fingerprint disagrees —
    mixing configurations in one run directory would silently corrupt
    the report.
``cells/<slug>.json``
    One published result per finished cell, written atomically
    (temp file + ``os.replace``).  Publication is **idempotent**: a
    cell's row is a pure function of the plan (timing and worker
    attribution aside), so duplicate completion republishes identical
    rows and the last writer wins.
``leases/<slug>.lease``
    In-flight claims (:mod:`repro.cache.leases`): O_CREAT|O_EXCL
    acquisition, mtime heartbeats, TTL expiry, atomic steal.  A worker
    SIGKILLed mid-cell stops heartbeating; after the TTL any other
    worker steals the lease and re-executes the cell.
``events-<worker>.jsonl``
    Per-worker event-bus shards (plus ``events-coordinator.jsonl``),
    discoverable by :func:`repro.telemetry.events.discover_event_files`
    — ``repro monitor <run-dir>`` aggregates them into one live view.
``workers/<worker>.json`` / ``manifest.json``
    Per-worker resource-profiler samples, folded into the run manifest
    by the coordinator.

**Work stealing** is scan-and-claim: each worker walks the plan's cells
in grid order, skips published ones, and claims the first cell that has
no live lease.  There is no queue service and no leader — a worker that
finishes early immediately picks up the next pending cell, and a cell
whose lease expired is re-dispatched to whoever scans it next.

**Bit-identity**: every cell executes through the existing
:func:`~repro.experiments.scheduler.run_sweep` cell path with a
single-cell grid, so report rows are bit-identical to the serial
scheduler (and to the naive per-cell loop) for any worker count,
any interleaving, and any crash/re-dispatch history.  Only
``elapsed_seconds`` and ``worker`` attribution vary — compare rows
with :meth:`~repro.experiments.scheduler.SweepCellResult.identity_dict`.

See ``docs/distributed.md`` for the protocol and multi-host setup.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..cache.keys import KEY_FIELD_REGISTRY, KEYED, make_key
from ..cache.leases import (
    LEASE_SUFFIX,
    LeaseHeartbeat,
    LeaseSettings,
    acquire_lease,
    lease_is_expired,
    steal_expired_lease,
)
from ..errors import ReproError
from ..robustness.faults import FailureRecord, classify_failure
from ..telemetry.events import EventBus, open_event_bus
from ..telemetry.manifest import build_manifest
from ..telemetry.resources import sample_resources
from .common import ExperimentConfig
from .scheduler import (
    SweepCellFailure,
    SweepCellResult,
    SweepReport,
    SweepSpec,
    run_sweep,
    sweep_cell_id,
)

PathLike = Union[str, Path]
Cell = Tuple[str, float, str]

#: Bumped when the run-directory layout changes incompatibly.
DISTRIBUTED_SCHEMA_VERSION = 1

PLAN_FILE = "sweep-plan.json"
MANIFEST_FILE = "manifest.json"
CELLS_DIR = "cells"
LEASES_DIR = "leases"
WORKERS_DIR = "workers"
COORDINATOR_EVENTS = "events-coordinator.jsonl"


@dataclass(frozen=True)
class DistributedSettings:
    """Coordinator-side fan-out knobs.

    ``workers`` and ``spawn`` are excluded from cache keys by the
    executor's determinism contract: rows are bit-identical for any
    worker count and spawn mechanism.  ``max_cells`` only limits how
    many cells one worker claims, never what any cell computes.
    """

    #: Local workers the coordinator launches (more may attach).
    workers: int = 1
    #: "subprocess" (``repro worker`` child processes, the production
    #: path) or "thread" (in-process worker loops; used by tests and
    #: race harnesses — cells still coordinate only through files).
    spawn: str = "subprocess"
    #: Per-worker claim budget; 0 = unlimited.
    max_cells: int = 0


@dataclass(frozen=True)
class SweepPlan:
    """The published description every worker executes against."""

    spec: SweepSpec
    config: ExperimentConfig
    fingerprint: str
    #: Benchmark/test mode: replace cell execution with a deterministic
    #: synthetic payload that sleeps this long.  Measures the
    #: coordination layer itself (claim, heartbeat, publish) with
    #: latency-bound cells; 0 (the default) runs real cells.
    synthetic_seconds: float = 0.0


def _registry_keyed_fields(obj: Any, class_name: str) -> Dict[str, Any]:
    """The KEYED fields of a registered dataclass, by registry."""
    table = KEY_FIELD_REGISTRY[class_name]
    out: Dict[str, Any] = {}
    for name, disposition in sorted(table.items()):
        if disposition == KEYED:
            value = getattr(obj, name)
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
    return out


def plan_fingerprint(
    spec: SweepSpec,
    config: ExperimentConfig,
    synthetic_seconds: float = 0.0,
) -> str:
    """Content-addressed identity of a distributed run.

    Folds exactly the registry-KEYED fields of the spec and config —
    the fields that can change result bits — plus the synthetic-mode
    knob.  Worker counts, lease timing, telemetry, and cache wiring are
    excluded: they never change what a cell computes.
    """
    return make_key(
        {
            "kind": "distributed-sweep",
            "schema": DISTRIBUTED_SCHEMA_VERSION,
            "spec": _registry_keyed_fields(spec, "SweepSpec"),
            "config": _registry_keyed_fields(config, "ExperimentConfig"),
            "synthetic_seconds": float(synthetic_seconds),
        }
    )


def cell_slug(model: str, drop: float, objective: str) -> str:
    """Filesystem-safe unique name of one grid cell."""
    return f"{model}__drop{drop:g}__{objective}"


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Write-then-rename publication (atomic on POSIX)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Plan publication / attachment
# ----------------------------------------------------------------------
def publish_plan(
    run_dir: PathLike,
    spec: SweepSpec,
    config: ExperimentConfig,
    synthetic_seconds: float = 0.0,
) -> SweepPlan:
    """Create (or validate and reuse) a run directory's plan.

    Re-publishing into an existing run directory is the **resume**
    path: the plan must fingerprint-match, published cells are kept,
    and only missing cells execute.  A mismatch is refused — a run
    directory binds to exactly one configuration.
    """
    run_path = Path(run_dir)
    plan = SweepPlan(
        spec=spec,
        config=config,
        fingerprint=plan_fingerprint(spec, config, synthetic_seconds),
        synthetic_seconds=float(synthetic_seconds),
    )
    plan_path = run_path / PLAN_FILE
    if plan_path.exists():
        existing = load_plan(run_dir)
        if existing.fingerprint != plan.fingerprint:
            raise ReproError(
                f"run directory {run_path} holds a different sweep "
                f"(plan fingerprint {existing.fingerprint[:12]} != "
                f"{plan.fingerprint[:12]}); use a fresh --run-dir or "
                "delete the old one"
            )
        return existing
    payload = {
        "schema": DISTRIBUTED_SCHEMA_VERSION,
        "fingerprint": plan.fingerprint,
        "synthetic_seconds": plan.synthetic_seconds,
        "spec": {
            "models": list(spec.models),
            "accuracy_drops": [float(d) for d in spec.accuracy_drops],
            "objectives": list(spec.objectives),
        },
        "config": dataclasses.asdict(config),
    }
    _atomic_write_json(plan_path, payload)
    return plan


def load_plan(run_dir: PathLike) -> SweepPlan:
    """Attach to a run directory; raises when no valid plan exists."""
    plan_path = Path(run_dir) / PLAN_FILE
    try:
        payload = json.loads(plan_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(
            f"{plan_path} is not a distributed sweep run directory "
            f"(no readable plan): {exc}"
        ) from exc
    except ValueError as exc:
        raise ReproError(f"{plan_path} is not valid JSON: {exc}") from exc
    if payload.get("schema") != DISTRIBUTED_SCHEMA_VERSION:
        raise ReproError(
            f"{plan_path}: plan schema {payload.get('schema')!r} is not "
            f"{DISTRIBUTED_SCHEMA_VERSION}"
        )
    spec_raw = payload["spec"]
    spec = SweepSpec(
        models=tuple(str(m) for m in spec_raw["models"]),
        accuracy_drops=tuple(
            float(d) for d in spec_raw["accuracy_drops"]
        ),
        objectives=tuple(str(o) for o in spec_raw["objectives"]),
    )
    config = ExperimentConfig(**payload["config"])
    synthetic = float(payload.get("synthetic_seconds", 0.0))
    fingerprint = plan_fingerprint(spec, config, synthetic)
    if fingerprint != payload.get("fingerprint"):
        raise ReproError(
            f"{plan_path}: stored fingerprint does not match the "
            "recomputed one; the plan file was edited or the code "
            "version changed (CODE_SALT) — start a fresh run directory"
        )
    return SweepPlan(
        spec=spec,
        config=config,
        fingerprint=fingerprint,
        synthetic_seconds=synthetic,
    )


# ----------------------------------------------------------------------
# Cell publication
# ----------------------------------------------------------------------
def result_path(run_dir: PathLike, cell: Cell) -> Path:
    return Path(run_dir) / CELLS_DIR / (cell_slug(*cell) + ".json")


def lease_path(run_dir: PathLike, cell: Cell) -> Path:
    return Path(run_dir) / LEASES_DIR / (cell_slug(*cell) + LEASE_SUFFIX)


def load_cell_row(run_dir: PathLike, cell: Cell) -> Optional[Dict[str, Any]]:
    """A published cell row, or None (missing/torn = not published)."""
    try:
        payload = json.loads(
            result_path(run_dir, cell).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def _row_from_cell_result(cell: SweepCellResult) -> Dict[str, Any]:
    row = cell.as_dict()
    row["status"] = "ok"
    # Not part of as_dict() but needed to reconstruct the dataclass.
    row["target_accuracy"] = cell.target_accuracy
    return row


def _result_from_row(row: Dict[str, Any]) -> SweepCellResult:
    return SweepCellResult(
        model=str(row["model"]),
        accuracy_drop=float(row["drop"]),
        objective=str(row["objective"]),
        sigma=float(row["sigma"]),
        effective_input_bits=float(row["eff_input_bits"]),
        effective_mac_bits=float(row["eff_mac_bits"]),
        baseline_accuracy=float(row["baseline_accuracy"]),
        validated_accuracy=(
            None
            if row.get("validated_accuracy") is None
            else float(row["validated_accuracy"])
        ),
        target_accuracy=float(row["target_accuracy"]),
        bitwidths={
            str(k): int(v) for k, v in dict(row["bitwidths"]).items()
        },
        degraded=bool(row["degraded"]),
        elapsed_seconds=float(row["elapsed_seconds"]),
    )


def _failure_from_row(row: Dict[str, Any]) -> SweepCellFailure:
    return SweepCellFailure(
        model=str(row["model"]),
        accuracy_drop=(
            None if row.get("drop") is None else float(row["drop"])
        ),
        objective=(
            None if row.get("objective") is None else str(row["objective"])
        ),
        failure=FailureRecord.from_dict(row["failure"]),
        elapsed_seconds=float(row["elapsed_seconds"]),
    )


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _synthetic_cell_row(plan: SweepPlan, cell: Cell) -> Dict[str, Any]:
    """Deterministic pseudo-result for coordination-layer benchmarks.

    Values are pure functions of (fingerprint, cell), so synthetic rows
    obey the same identity contract as real ones: any worker count and
    any re-dispatch history publishes identical rows.
    """
    import hashlib

    model, drop, objective = cell
    digest = hashlib.sha256(
        f"{plan.fingerprint}/{cell_slug(*cell)}".encode("utf-8")
    ).hexdigest()
    unit = int(digest[:8], 16) / float(2**32)
    time.sleep(plan.synthetic_seconds)
    return {
        "status": "ok",
        "model": model,
        "drop": drop,
        "objective": objective,
        "sigma": round(0.05 + 0.5 * unit, 6),
        "eff_input_bits": round(4.0 + 8.0 * unit, 6),
        "eff_mac_bits": round(8.0 + 16.0 * unit, 6),
        "baseline_accuracy": 1.0,
        "validated_accuracy": round(1.0 - drop * unit, 6),
        "target_accuracy": round(1.0 - drop, 6),
        "meets_constraint": True,
        "bitwidths": {"synthetic": 8},
        "degraded": False,
        "elapsed_seconds": plan.synthetic_seconds,
    }


def execute_cell(plan: SweepPlan, cell: Cell) -> Dict[str, Any]:
    """One cell through the existing ``run_sweep`` cell path.

    The worker-local config strips run-level observability and the
    single-process checkpoint directory: the run directory owns the
    event lifecycle, and cell-granular resume comes from published
    results plus the shared content-addressed store.
    """
    if plan.synthetic_seconds > 0:
        return _synthetic_cell_row(plan, cell)
    model, drop, objective = cell
    spec = SweepSpec(
        models=(model,), accuracy_drops=(drop,), objectives=(objective,)
    )
    config = replace(
        plan.config, events_dir="", trace_out="", state_dir=""
    )
    report = run_sweep(spec, config, keep_going=True)
    if report.cells:
        row = _row_from_cell_result(report.cells[0])
    else:
        failure = report.failures[0]
        row = failure.as_dict()
        row["failure"] = failure.failure.as_dict()
    row["cache_hits"] = report.cache_counters.get("hits", 0)
    row["cache_misses"] = report.cache_counters.get("misses", 0)
    return row


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
@dataclass
class WorkerReport:
    """What one worker did before running out of work."""

    worker_id: str
    cells_claimed: int = 0
    cells_published: int = 0
    leases_stolen: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "cells_claimed": self.cells_claimed,
            "cells_published": self.cells_published,
            "leases_stolen": self.leases_stolen,
            "elapsed_seconds": self.elapsed_seconds,
        }


def default_worker_id() -> str:
    return f"w{os.getpid()}-{uuid.uuid4().hex[:4]}"


def _write_worker_record(
    run_dir: Path, report: WorkerReport
) -> None:
    """Publish the worker's resource-profiler sample for the manifest."""
    record = report.as_dict()
    record["resources"] = dataclasses.asdict(sample_resources())
    _atomic_write_json(
        run_dir / WORKERS_DIR / f"{report.worker_id}.json", record
    )


def _claim_one(
    run_dir: Path,
    plan: SweepPlan,
    worker_id: str,
    settings: LeaseSettings,
    report: WorkerReport,
) -> Tuple[Optional[Cell], Optional[Any], bool]:
    """Scan for the first claimable cell.

    Returns ``(cell, lease, pending_elsewhere)``; ``cell`` is None when
    nothing was claimable, and ``pending_elsewhere`` says whether any
    unpublished cell is still held by a live lease (so the caller
    should poll rather than exit).
    """
    pending_elsewhere = False
    for cell in plan.spec.cells():
        if result_path(run_dir, cell).exists():
            continue
        path = lease_path(run_dir, cell)
        lease = acquire_lease(path, worker_id, settings)
        if lease is None and lease_is_expired(path, settings):
            lease = steal_expired_lease(path, worker_id, settings)
            if lease is not None:
                report.leases_stolen += 1
        if lease is None:
            pending_elsewhere = True
            continue
        # The previous holder may have published between our result
        # check and the claim; the lease makes this re-check stable.
        if result_path(run_dir, cell).exists():
            lease.release()
            continue
        return cell, lease, pending_elsewhere
    return None, None, pending_elsewhere


def run_worker(
    run_dir: PathLike,
    worker_id: Optional[str] = None,
    settings: Optional[LeaseSettings] = None,
    max_cells: int = 0,
    progress: bool = False,
) -> WorkerReport:
    """Attach one work-stealing worker to a run directory.

    Claims pending cells one at a time (grid order, earliest first),
    executes each through the scheduler cell path under a heartbeating
    lease, publishes the row atomically, and exits when every cell of
    the plan has a published result (or ``max_cells`` was reached).
    Safe to run any number of these concurrently, on any host that
    shares the run directory.
    """
    run_path = Path(run_dir)
    plan = load_plan(run_path)
    settings = settings or LeaseSettings()
    worker_id = worker_id or default_worker_id()
    report = WorkerReport(worker_id=worker_id)
    bus = EventBus(run_path / f"events-{worker_id}.jsonl")
    start = time.perf_counter()
    bus.run_started(total_cells=0, kind="worker", worker=worker_id)
    try:
        while True:
            cell, lease, pending = _claim_one(
                run_path, plan, worker_id, settings, report
            )
            if cell is None or lease is None:
                if not pending:
                    break  # every cell is published
                time.sleep(settings.poll_seconds)
                continue
            cell_id = sweep_cell_id(*cell)
            report.cells_claimed += 1
            bus.cell("running", cell_id, worker=worker_id)
            cell_start = time.perf_counter()
            try:
                with LeaseHeartbeat(lease, settings):
                    row = execute_cell(plan, cell)
            # Fault isolation: any crash becomes a published failed row
            # so a deterministically-crashing cell is not re-dispatched
            # forever.
            except Exception as exc:  # repro-check: ignore[overbroad-except]
                failure = classify_failure(exc)
                row = {
                    "status": "failed",
                    "model": cell[0],
                    "drop": cell[1],
                    "objective": cell[2],
                    "failure": failure.as_dict(),
                }
                row.update(failure.as_dict())
            row["elapsed_seconds"] = time.perf_counter() - cell_start
            row["worker"] = worker_id
            _atomic_write_json(result_path(run_path, cell), row)
            lease.release()
            report.cells_published += 1
            if row.get("status") == "failed":
                bus.cell(
                    "failed",
                    cell_id,
                    worker=worker_id,
                    error_class=row["failure"]["error_class"],
                )
            else:
                if row.get("cache_hits", 0) and not row.get(
                    "cache_misses", 0
                ):
                    bus.cell("cached-hit", cell_id)
                bus.cell(
                    "done",
                    cell_id,
                    worker=worker_id,
                    elapsed_seconds=row["elapsed_seconds"],
                    cache_hits=int(row.get("cache_hits", 0)),
                    cache_misses=int(row.get("cache_misses", 0)),
                    peak_rss_bytes=sample_resources().peak_rss_bytes,
                )
            if progress:  # pragma: no cover - console nicety
                print(f"  [{worker_id}] {cell_id} published")
            if max_cells and report.cells_claimed >= max_cells:
                break
    finally:
        report.elapsed_seconds = time.perf_counter() - start
        bus.run_finished(
            worker=worker_id,
            cells_claimed=report.cells_claimed,
            cells_published=report.cells_published,
            leases_stolen=report.leases_stolen,
        )
        bus.close()
        try:
            _write_worker_record(run_path, report)
        except OSError:  # pragma: no cover - record is best-effort
            pass
    return report


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _spawn_worker_process(
    run_dir: Path, worker_id: str, settings: LeaseSettings
) -> "subprocess.Popen[bytes]":
    """One ``repro worker`` child sharing this interpreter/environment."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        str(run_dir),
        "--worker-id",
        worker_id,
        "--lease-ttl",
        str(settings.ttl_seconds),
        "--heartbeat",
        str(settings.heartbeat_seconds),
        "--poll",
        str(settings.poll_seconds),
    ]
    return subprocess.Popen(argv)


def collect_report(
    run_dir: PathLike, plan: Optional[SweepPlan] = None
) -> SweepReport:
    """Assemble the sweep report from published rows, in grid order.

    Row order — and therefore the rendered report — is the plan's cell
    order, independent of which worker finished which cell when.
    Raises when any cell has no published row (the run is incomplete;
    attach more workers or re-run the coordinator to finish it).
    """
    run_path = Path(run_dir)
    plan = plan or load_plan(run_path)
    report = SweepReport(
        cache_dir=plan.config.resolved_cache_dir()
    )
    totals: Dict[str, int] = {}
    missing: List[str] = []
    for cell in plan.spec.cells():
        row = load_cell_row(run_path, cell)
        if row is None:
            missing.append(sweep_cell_id(*cell))
            continue
        if row.get("status") == "failed":
            report.failures.append(_failure_from_row(row))
        else:
            report.cells.append(_result_from_row(row))
            for key in ("hits", "misses"):
                totals[key] = totals.get(key, 0) + int(
                    row.get(f"cache_{key}", 0)
                )
    if missing:
        raise ReproError(
            f"distributed sweep incomplete: {len(missing)} cells have "
            f"no published result ({', '.join(missing[:4])}"
            + ("..." if len(missing) > 4 else "")
            + "); attach more workers or re-run to finish"
        )
    report.cache_counters = totals
    return report


def _worker_records(run_dir: Path) -> Dict[str, Any]:
    records: Dict[str, Any] = {}
    workers_dir = run_dir / WORKERS_DIR
    if not workers_dir.is_dir():
        return records
    for path in sorted(workers_dir.glob("*.json")):
        try:
            records[path.stem] = json.loads(
                path.read_text(encoding="utf-8")
            )
        except (OSError, ValueError):  # pragma: no cover - torn record
            continue
    return records


def write_run_manifest(
    run_dir: PathLike, plan: SweepPlan, elapsed_seconds: float
) -> Dict[str, Any]:
    """Fold per-worker resource samples into the run manifest."""
    run_path = Path(run_dir)
    manifest = build_manifest(
        config={
            "kind": "distributed-sweep",
            "fingerprint": plan.fingerprint,
            "models": list(plan.spec.models),
            "accuracy_drops": [float(d) for d in plan.spec.accuracy_drops],
            "objectives": list(plan.spec.objectives),
            "synthetic_seconds": plan.synthetic_seconds,
        },
        seed=plan.config.seed,
        model=",".join(plan.spec.models),
    )
    workers = _worker_records(run_path)
    num_cells = plan.spec.num_cells
    payload = {
        "schema": DISTRIBUTED_SCHEMA_VERSION,
        "manifest": manifest.as_dict(),
        "workers": workers,
        "num_workers": len(workers),
        "num_cells": num_cells,
        "elapsed_seconds": elapsed_seconds,
        "cells_per_second": (
            num_cells / elapsed_seconds if elapsed_seconds > 0 else 0.0
        ),
    }
    _atomic_write_json(run_path / MANIFEST_FILE, payload)
    return payload


def run_sweep_distributed(
    spec: Optional[SweepSpec] = None,
    config: Optional[ExperimentConfig] = None,
    distribution: Optional[DistributedSettings] = None,
    lease: Optional[LeaseSettings] = None,
    run_dir: Optional[PathLike] = None,
    synthetic_seconds: float = 0.0,
    progress: bool = False,
) -> SweepReport:
    """Execute a sweep grid across work-stealing workers.

    Publishes the plan into ``run_dir`` (a temporary directory when
    None), launches ``distribution.workers`` local workers, waits for
    them, and assembles the report from the published rows.  Extra
    workers — including on other hosts sharing the directory — may
    attach at any time with ``repro worker <run-dir>``.  Re-running
    against an existing run directory resumes it: published cells are
    kept, only missing ones execute.
    """
    spec = spec or SweepSpec()
    config = config or ExperimentConfig()
    distribution = distribution or DistributedSettings()
    lease = lease or LeaseSettings()
    if distribution.workers < 1:
        raise ReproError("distributed sweep needs at least one worker")
    if distribution.spawn not in ("subprocess", "thread"):
        raise ReproError(
            f"unknown spawn mechanism {distribution.spawn!r} "
            "(subprocess or thread)"
        )
    temp_dir: Optional[tempfile.TemporaryDirectory[str]] = None
    if run_dir is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        run_dir = temp_dir.name
    run_path = Path(run_dir)
    try:
        plan = publish_plan(run_path, spec, config, synthetic_seconds)
        bus = open_event_bus(run_path, filename=COORDINATOR_EVENTS)
        start = time.perf_counter()
        bus.run_started(
            total_cells=plan.spec.num_cells,
            kind="sweep-distributed",
            workers=distribution.workers,
        )
        for cell in plan.spec.cells():
            if not result_path(run_path, cell).exists():
                bus.cell("queued", sweep_cell_id(*cell))
        try:
            worker_ids = [
                f"w{index}" for index in range(distribution.workers)
            ]
            if distribution.spawn == "thread":
                threads = [
                    threading.Thread(
                        target=run_worker,
                        args=(run_path,),
                        kwargs={
                            "worker_id": wid,
                            "settings": lease,
                            "max_cells": distribution.max_cells,
                        },
                        name=f"repro-worker-{wid}",
                    )
                    for wid in worker_ids
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            else:
                procs = [
                    _spawn_worker_process(run_path, wid, lease)
                    for wid in worker_ids
                ]
                failed = [
                    proc.args for proc in procs if proc.wait() != 0
                ]
                if failed:
                    raise ReproError(
                        f"{len(failed)} worker process(es) exited "
                        "non-zero; see their output above"
                    )
            elapsed = time.perf_counter() - start
            report = collect_report(run_path, plan)
            report.elapsed_seconds = elapsed
            write_run_manifest(run_path, plan, elapsed)
        finally:
            bus.run_finished()
            bus.close()
        if progress:  # pragma: no cover - console nicety
            for line in report.lines():
                print("  " + line)
        return report
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()


__all__ = [
    "CELLS_DIR",
    "COORDINATOR_EVENTS",
    "DISTRIBUTED_SCHEMA_VERSION",
    "DistributedSettings",
    "LEASES_DIR",
    "MANIFEST_FILE",
    "PLAN_FILE",
    "SweepPlan",
    "WORKERS_DIR",
    "WorkerReport",
    "cell_slug",
    "collect_report",
    "default_worker_id",
    "execute_cell",
    "lease_path",
    "load_cell_row",
    "load_plan",
    "plan_fingerprint",
    "publish_plan",
    "result_path",
    "run_sweep_distributed",
    "run_worker",
    "write_run_manifest",
]
