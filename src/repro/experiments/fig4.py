"""Figure 4 driver: NiN per-layer bitwidth / energy trade.

The paper's Fig. 4 shows, for NiN's 12 layers, the baseline and
energy-optimized bitwidths side by side with each layer's MAC energy:
the optimizer *raises* the bitwidth of low-energy layers to *lower* the
bitwidth of power-hungry ones, saving 22.8% total MAC energy while
costing some bandwidth ("5.6% worse than the baseline").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..baselines import smallest_uniform_bitwidth
from ..hardware import MacEnergyModel, per_layer_table, uniform_weight_bits
from ..optimize import input_bandwidth_objective
from .common import ExperimentConfig, make_context


@dataclass
class Fig4Result:
    model: str
    rows: List[Dict[str, object]]
    baseline_energy_pj: float
    optimized_energy_pj: float
    energy_save_percent: float
    baseline_input_bits: float
    optimized_input_bits: float
    bandwidth_change_percent: float
    raised_layers: List[str]
    lowered_layers: List[str]


def run_fig4(
    config: Optional[ExperimentConfig] = None,
    accuracy_drop: float = 0.05,
    weight_bits: int = 8,
    energy_model: MacEnergyModel = MacEnergyModel(),
) -> Fig4Result:
    """Per-layer energy-optimization anatomy on the NiN replica."""
    config = replace(config or ExperimentConfig(), model="nin")
    context = make_context(config)
    optimizer = context.optimizer
    stats = optimizer.stats()
    ordered = optimizer.ordered_stats()

    base = smallest_uniform_bitwidth(
        context.network,
        context.test,
        ordered,
        optimizer.baseline_accuracy(),
        accuracy_drop,
    )
    out_mac = optimizer.optimize("mac", accuracy_drop=accuracy_drop)
    allocations = {
        "baseline": base.allocation,
        "optimized": out_mac.result.allocation,
    }
    wbits = uniform_weight_bits(base.allocation, weight_bits)
    rows = per_layer_table(stats, allocations, wbits, model=energy_model)

    base_energy = energy_model.network_energy_pj(stats, base.allocation, wbits)
    opt_energy = energy_model.network_energy_pj(
        stats, out_mac.result.allocation, wbits
    )
    rho_input = input_bandwidth_objective(stats).rho
    base_bw = base.allocation.weighted_bits(rho_input)
    opt_bw = out_mac.result.allocation.weighted_bits(rho_input)

    raised = [
        str(r["layer"])
        for r in rows
        if int(r["optimized_bits"]) > int(r["baseline_bits"])
    ]
    lowered = [
        str(r["layer"])
        for r in rows
        if int(r["optimized_bits"]) < int(r["baseline_bits"])
    ]
    return Fig4Result(
        model=config.model,
        rows=rows,
        baseline_energy_pj=base_energy,
        optimized_energy_pj=opt_energy,
        energy_save_percent=100.0 * (base_energy - opt_energy) / base_energy,
        baseline_input_bits=base_bw,
        optimized_input_bits=opt_bw,
        bandwidth_change_percent=100.0 * (opt_bw - base_bw) / base_bw,
        raised_layers=raised,
        lowered_layers=lowered,
    )
