"""Shared experiment scaffolding.

Every table/figure driver works from an :class:`ExperimentContext`: a
pretrained network replica, its train/test datasets, and a configured
:class:`~repro.pipeline.PrecisionOptimizer`.  Sizes default to values
that finish quickly on the numpy substrate; benchmarks can scale them
up via :class:`ExperimentConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import (
    DEFAULT_SEED,
    ParallelSettings,
    ProfileSettings,
    SearchSettings,
    TelemetrySettings,
)
from ..data import Dataset, SyntheticImageNet
from ..models import pretrained_model
from ..nn import Network
from ..pipeline import PrecisionOptimizer


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    model: str = "alexnet"
    num_classes: int = 16
    train_count: int = 512
    test_count: int = 256
    profile_images: int = 32
    profile_points: int = 10
    profile_repeats: int = 2
    #: Paper Fig. 3: each accuracy point averages 3 measurements.
    search_trials: int = 3
    #: "scheme1" (equal-scheme uniform injection, the paper's primary
    #: accuracy test) or "scheme2" (fast Gaussian logits approximation).
    scheme: str = "scheme1"
    seed: int = DEFAULT_SEED
    #: Escalate guardrail warnings and solver degradation to errors.
    strict: bool = False
    #: Directory for resumable run state ("" disables checkpointing).
    state_dir: str = ""
    #: Worker count for the injection engine's layer-level pool
    #: (``--jobs``; 1 = serial, deterministic either way).
    jobs: int = 1
    #: Engine pool backend: "thread" or "process".
    parallel_backend: str = "thread"
    #: Collect tracing spans and metrics (``--telemetry``); numerical
    #: results are bit-identical on or off.
    telemetry: bool = False
    #: Write the JSONL trace here when set (``--trace-out``; implies
    #: telemetry collection).
    trace_out: str = ""
    #: Directory for live lifecycle events (``--events-dir``); ""
    #: disables the event bus.  ``repro monitor`` tails this.
    events_dir: str = ""
    #: Persistent result-cache directory (``--cache-dir``).  "" means
    #: "use $REPRO_CACHE_DIR if set, else no persistent cache".
    cache_dir: str = ""
    #: Force the persistent cache off even if a directory or the
    #: environment names one (``--no-cache``).
    no_cache: bool = False

    def profile_settings(self) -> ProfileSettings:
        return ProfileSettings(
            num_images=self.profile_images,
            num_delta_points=self.profile_points,
            num_repeats=self.profile_repeats,
            seed=self.seed,
        )

    def search_settings(self) -> SearchSettings:
        return SearchSettings(
            num_images=self.test_count,
            num_trials=self.search_trials,
            seed=self.seed,
        )

    def parallel_settings(self) -> ParallelSettings:
        return ParallelSettings(
            jobs=self.jobs, backend=self.parallel_backend
        )

    def telemetry_settings(self) -> TelemetrySettings:
        return TelemetrySettings(
            enabled=self.telemetry,
            trace_path=self.trace_out,
            events_dir=self.events_dir,
        )

    def resolved_cache_dir(self) -> Optional[str]:
        """The cache directory to use, or None for no persistent cache.

        Precedence: ``no_cache`` kills it outright; an explicit
        ``cache_dir`` wins; otherwise ``$REPRO_CACHE_DIR`` opts in.
        Note the *library* default is off — only an explicit flag or
        the environment enables persistence.
        """
        if self.no_cache:
            return None
        if self.cache_dir:
            return self.cache_dir
        import os

        from ..cache import CACHE_DIR_ENV

        return os.environ.get(CACHE_DIR_ENV) or None


@dataclass
class ExperimentContext:
    """A ready-to-analyze pretrained network."""

    config: ExperimentConfig
    network: Network
    train: Dataset
    test: Dataset
    pretrain_info: Dict[str, float]
    optimizer: PrecisionOptimizer


_CONTEXT_CACHE: Dict[ExperimentConfig, ExperimentContext] = {}


def make_context(
    config: Optional[ExperimentConfig] = None, use_cache: bool = True
) -> ExperimentContext:
    """Build (or fetch) the context for a configuration.

    Contexts are cached per exact configuration: several benchmarks
    share the same pretrained model and profiling run, mirroring the
    paper's "profile once, re-optimize cheaply" workflow.
    """
    config = config or ExperimentConfig()
    if use_cache and config in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[config]
    source = SyntheticImageNet(num_classes=config.num_classes, seed=config.seed)
    network, train, test, info = pretrained_model(
        config.model,
        source=source,
        train_count=config.train_count,
        test_count=config.test_count,
        seed=config.seed,
    )
    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=config.profile_settings(),
        search_settings=config.search_settings(),
        scheme=config.scheme,
        strict=config.strict,
        state_dir=config.state_dir or None,
        parallel=config.parallel_settings(),
        telemetry=config.telemetry_settings(),
        cache=config.resolved_cache_dir(),
    )
    context = ExperimentContext(
        config=config,
        network=network,
        train=train,
        test=test,
        pretrain_info=info,
        optimizer=optimizer,
    )
    if use_cache:
        _CONTEXT_CACHE[config] = context
    return context


def clear_context_cache() -> None:
    """Drop all cached contexts (frees model + profiling memory)."""
    _CONTEXT_CACHE.clear()
