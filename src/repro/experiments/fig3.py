"""Figure 3 driver: accuracy vs sigma_YL under both schemes.

Left plot: top-1 accuracy as a function of the output error budget for
*equal_scheme* (Scheme 1: uniform injection at every layer with
xi = 1/L) and *gaussian_approx* (Scheme 2: N(0, sigma^2) on the
logits), with error bars from the xi corner-case study.  Right plot:
the final-layer error histogram against a perfect Gaussian — here
summarized by (mean, std, excess kurtosis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis import (
    Scheme1Evaluator,
    Scheme2Evaluator,
    deltas_for_sigma,
    multi_layer_uniform_taps,
    normality_statistics,
    xi_robustness_study,
)
from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass
class Fig3Point:
    """One x-position of the left plot."""

    sigma: float
    equal_scheme_accuracy: float
    gaussian_approx_accuracy: float
    corner_min_accuracy: Optional[float] = None
    corner_max_accuracy: Optional[float] = None

    @property
    def scheme_gap(self) -> float:
        return abs(
            self.equal_scheme_accuracy - self.gaussian_approx_accuracy
        )


@dataclass
class Fig3Result:
    model: str
    points: List[Fig3Point]
    error_mean: float
    error_std: float
    error_excess_kurtosis: float
    target_sigma: float

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "sigma": p.sigma,
                "equal_scheme": p.equal_scheme_accuracy,
                "gaussian_approx": p.gaussian_approx_accuracy,
                "corner_min": p.corner_min_accuracy,
                "corner_max": p.corner_max_accuracy,
            }
            for p in self.points
        ]


def run_fig3(
    config: Optional[ExperimentConfig] = None,
    sigmas: Optional[List[float]] = None,
    with_corners: bool = True,
    histogram_sigma: float = 1.0,
    context: Optional[ExperimentContext] = None,
) -> Fig3Result:
    """Measure both scheme curves (and corner error bars) on one model."""
    context = context or make_context(config)
    optimizer = context.optimizer
    profiles = optimizer.profile().profiles
    if sigmas is None:
        sigmas = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0]

    scheme1 = Scheme1Evaluator(
        context.network, context.test, profiles, seed=context.config.seed
    )
    scheme2 = Scheme2Evaluator(
        context.network, context.test, seed=context.config.seed
    )
    corner_points = {}
    if with_corners:
        corners = xi_robustness_study(
            context.network,
            context.test,
            profiles,
            sigmas,
            seed=context.config.seed,
        )
        corner_points = {p.sigma: p for p in corners}

    points = []
    for sigma in sigmas:
        corner = corner_points.get(sigma)
        points.append(
            Fig3Point(
                sigma=sigma,
                equal_scheme_accuracy=scheme1.accuracy(sigma),
                gaussian_approx_accuracy=scheme2.accuracy(sigma),
                corner_min_accuracy=corner.min_accuracy if corner else None,
                corner_max_accuracy=corner.max_accuracy if corner else None,
            )
        )

    # Right-hand histogram: actual final-layer error under equal-scheme
    # injection at a representative sigma, summarized by moments.
    rng = np.random.default_rng(context.config.seed)
    deltas = deltas_for_sigma(profiles, histogram_sigma)
    taps = multi_layer_uniform_taps(deltas, rng)
    images = context.test.images[:128]
    clean = context.network.forward(images)
    noisy = context.network.forward(images, taps=taps)
    mean, std, kurtosis = normality_statistics(noisy - clean)

    sigma_result = optimizer.sigma_for_drop(0.01)
    return Fig3Result(
        model=context.config.model,
        points=points,
        error_mean=mean,
        error_std=std,
        error_excess_kurtosis=kurtosis,
        target_sigma=sigma_result.sigma,
    )
