"""Experiment drivers: one module per paper table/figure plus ablations.

Benchmarks (``benchmarks/``) and examples (``examples/``) call these
drivers; keeping them in the library makes every result reproducible
from the public API.
"""

from .ablations import (
    AdditivityResult,
    ChannelwiseResult,
    ClippingResult,
    NegativeFractionResult,
    SchemeAgreementResult,
    StabilityResult,
    XiAblationResult,
    run_additivity_check,
    run_budget_audit,
    run_channelwise_ablation,
    run_clipping_ablation,
    run_negative_fraction_ablation,
    run_profile_stability,
    run_scheme_agreement,
    run_xi_ablation,
)
from .common import (
    ExperimentConfig,
    ExperimentContext,
    clear_context_cache,
    make_context,
)
from .cost import CostComparison, run_cost_comparison
from .distributed import (
    DistributedSettings,
    SweepPlan,
    WorkerReport,
    collect_report,
    load_plan,
    plan_fingerprint,
    publish_plan,
    run_sweep_distributed,
    run_worker,
)
from .export import export_csv, export_json, load_json
from .scheduler import (
    SweepCellFailure,
    SweepCellResult,
    SweepReport,
    SweepSpec,
    run_sweep,
)
from .ablate import (
    AblationSpec,
    build_campaign_cells,
    campaign_fingerprint,
    run_ablation_campaign,
)
from .fig1 import ErrorShape, Fig1Result, run_fig1
from .suite import SUITE_EXPERIMENTS, run_suite
from .sweeps import DropSweepPoint, DropSweepResult, run_drop_sweep
from .fig2 import Fig2Result, LinearitySeries, run_fig2
from .fig3 import Fig3Point, Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .table2 import Table2Result, run_table2
from .table3 import Table3Row, average_savings, run_table3, run_table3_row

__all__ = [
    "AblationSpec",
    "AdditivityResult",
    "ChannelwiseResult",
    "ClippingResult",
    "CostComparison",
    "DistributedSettings",
    "DropSweepPoint",
    "DropSweepResult",
    "ErrorShape",
    "ExperimentConfig",
    "ExperimentContext",
    "Fig1Result",
    "Fig2Result",
    "Fig3Point",
    "Fig3Result",
    "Fig4Result",
    "LinearitySeries",
    "NegativeFractionResult",
    "SUITE_EXPERIMENTS",
    "SchemeAgreementResult",
    "StabilityResult",
    "SweepCellFailure",
    "SweepCellResult",
    "SweepPlan",
    "SweepReport",
    "SweepSpec",
    "Table2Result",
    "Table3Row",
    "WorkerReport",
    "XiAblationResult",
    "average_savings",
    "build_campaign_cells",
    "campaign_fingerprint",
    "clear_context_cache",
    "collect_report",
    "export_csv",
    "export_json",
    "load_json",
    "load_plan",
    "make_context",
    "plan_fingerprint",
    "publish_plan",
    "run_ablation_campaign",
    "run_additivity_check",
    "run_budget_audit",
    "run_channelwise_ablation",
    "run_clipping_ablation",
    "run_cost_comparison",
    "run_drop_sweep",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_negative_fraction_ablation",
    "run_profile_stability",
    "run_scheme_agreement",
    "run_suite",
    "run_sweep",
    "run_sweep_distributed",
    "run_table2",
    "run_table3",
    "run_table3_row",
    "run_worker",
    "run_xi_ablation",
]
