"""Section VI-A driver: analytic-method cost vs dynamic-search cost.

"Our method transformed the time-consuming searching method in previous
works into two simpler tasks: (1) profiling ... (2) binary search for
sigma_YL. ... Changing the user constraints only requires re-running
the last optimization step."

The driver measures wall time and the number of full-network accuracy
evaluations consumed by (a) the analytic pipeline and (b) the
Stripes-style search, on the same network and constraint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..baselines import stripes_search
from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass
class CostComparison:
    model: str
    analytic_profile_seconds: float
    analytic_search_seconds: float
    analytic_optimize_seconds: float
    analytic_accuracy_evaluations: int
    search_seconds: float
    search_accuracy_evaluations: int
    reoptimize_seconds: float

    @property
    def analytic_total_seconds(self) -> float:
        return (
            self.analytic_profile_seconds
            + self.analytic_search_seconds
            + self.analytic_optimize_seconds
        )

    @property
    def evaluation_ratio(self) -> float:
        """Search evaluations per analytic evaluation (>= 1 expected)."""
        return self.search_accuracy_evaluations / max(
            self.analytic_accuracy_evaluations, 1
        )


def run_cost_comparison(
    config: Optional[ExperimentConfig] = None,
    accuracy_drop: float = 0.01,
    context: Optional[ExperimentContext] = None,
) -> CostComparison:
    """Time both approaches on one network.

    A fresh :class:`~repro.pipeline.PrecisionOptimizer` is built so the
    timings reflect real work even when the shared context has already
    profiled the network for another experiment.
    """
    from ..pipeline import PrecisionOptimizer

    context = context or make_context(config)
    optimizer = PrecisionOptimizer(
        context.network,
        context.test,
        profile_settings=context.config.profile_settings(),
        search_settings=context.config.search_settings(),
    )

    t0 = time.perf_counter()
    optimizer.profile()
    t_profile = time.perf_counter() - t0

    t0 = time.perf_counter()
    sigma_result = optimizer.sigma_for_drop(accuracy_drop)
    t_sigma = time.perf_counter() - t0

    t0 = time.perf_counter()
    optimizer.optimize("input", accuracy_drop=accuracy_drop, validate=False)
    t_optimize = time.perf_counter() - t0

    # "Changing the user constraints only requires re-running the last
    # optimization step": re-optimizing for a different objective.
    t0 = time.perf_counter()
    optimizer.optimize("mac", accuracy_drop=accuracy_drop, validate=False)
    t_reoptimize = time.perf_counter() - t0

    search = stripes_search(
        context.network,
        context.test,
        optimizer.ordered_stats(),
        optimizer.baseline_accuracy(),
        accuracy_drop,
    )
    return CostComparison(
        model=context.config.model,
        analytic_profile_seconds=t_profile,
        analytic_search_seconds=t_sigma,
        analytic_optimize_seconds=t_optimize,
        analytic_accuracy_evaluations=sigma_result.num_evaluations,
        search_seconds=search.elapsed_seconds,
        search_accuracy_evaluations=search.evaluations,
        reoptimize_seconds=t_reoptimize,
    )
