"""Figure 1 / Section III driver: error-shape validation.

Fig. 1 illustrates the statistical backbone of the method: uniform
rounding error injected at a layer's input becomes an approximately
*Gaussian* error at that layer's output (dot products average many
independent terms), and stays near-Gaussian all the way to layer L.
This driver measures those shapes so tests and benches can check them
quantitatively (uniform excess kurtosis is -1.2; Gaussian is 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis import normality_statistics, uniform_noise_tap
from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass
class ErrorShape:
    """Moments of an error distribution at one probe point."""

    where: str
    mean: float
    std: float
    excess_kurtosis: float


@dataclass
class Fig1Result:
    model: str
    injected_layer: str
    delta: float
    shapes: List[ErrorShape]

    def shape(self, where: str) -> ErrorShape:
        for s in self.shapes:
            if s.where == where:
                return s
        raise KeyError(where)


def run_fig1(
    config: Optional[ExperimentConfig] = None,
    layer: Optional[str] = None,
    delta: float = 1.0,
    num_images: int = 64,
    context: Optional[ExperimentContext] = None,
) -> Fig1Result:
    """Inject at one layer; measure error shape at input, output, and L."""
    context = context or make_context(config)
    network = context.network
    layer = layer or network.analyzed_layer_names[0]
    images = context.test.images[:num_images]
    cache = network.run_all(images)
    rng = np.random.default_rng(context.config.seed)

    # Error on the layer input is by construction uniform (the tap).
    layer_input_name = network[layer].inputs[0]
    clean_input = cache[layer_input_name]
    tap = uniform_noise_tap(delta, rng)
    noisy_input = tap(clean_input)
    input_error = noisy_input - clean_input

    # Error at the layer's own output: run just that layer.
    layer_obj = network[layer]
    other_inputs = [cache[n] for n in layer_obj.inputs]
    clean_out = layer_obj.forward(other_inputs)
    noisy_out = layer_obj.forward([noisy_input] + other_inputs[1:])
    layer_output_error = noisy_out - clean_out

    # Error at the network output (layer L).
    perturbed = network.forward_from(
        cache, layer, uniform_noise_tap(delta, rng)
    )
    final_error = perturbed - cache[network.output_name]

    shapes = []
    for where, err in [
        ("layer_input", input_error[clean_input != 0]),
        ("layer_output", layer_output_error),
        ("network_output", final_error),
    ]:
        mean, std, kurtosis = normality_statistics(np.asarray(err))
        shapes.append(
            ErrorShape(where=where, mean=mean, std=std, excess_kurtosis=kurtosis)
        )
    return Fig1Result(
        model=context.config.model,
        injected_layer=layer,
        delta=delta,
        shapes=shapes,
    )
