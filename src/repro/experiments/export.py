"""Export experiment results to JSON / CSV artifacts.

Benchmarks print their tables; this module additionally persists them
so downstream analysis (plotting, regression tracking across runs) can
consume the numbers without re-running multi-minute experiments.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Sequence, Union

import numpy as np

from ..errors import ReproError

PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy / dataclass values to JSON-native ones."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def export_json(result: Any, path: PathLike) -> Path:
    """Write any experiment result (dataclass/dict/list) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(_jsonable(result), handle, indent=2, sort_keys=True)
    return path


def load_json(path: PathLike) -> Any:
    """Read back a previously exported result (as plain dicts/lists)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no exported result at {path}")
    with open(path) as handle:
        return json.load(handle)


def export_csv(
    rows: Sequence[Mapping[str, Any]],
    path: PathLike,
    columns: Sequence[str] = (),
) -> Path:
    """Write a list of dict rows as CSV (columns default to first row)."""
    if not rows:
        raise ReproError("cannot export an empty table")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(columns) if columns else list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _jsonable(row.get(k, "")) for k in fieldnames})
    return path
