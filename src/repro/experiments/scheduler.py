"""Incremental sweep scheduler: Table-III-style grids without rework.

A sweep is a grid of cells ``(model, accuracy_drop, objective)``.  Run
naively — one fresh pipeline per cell — most of the work is repeated:
every cell of a model re-profiles the same lambda/theta, re-measures
the same baseline accuracy, and re-probes the same doubling-phase
sigmas.  The scheduler removes that rework on two levels:

* **In-process sharing**: cells are grouped by model and executed
  against *one* :class:`~repro.pipeline.PrecisionOptimizer`, whose
  profile report, layer stats, baseline accuracy, and sigma-evaluator
  memos are shared across every drop and objective of that model.
* **Persistent sharing** (``cache_dir``): all cache-aware surfaces read
  and write the content-addressed store (:mod:`repro.cache`), so a
  re-run — or a sweep extended by one new grid point — only computes
  what no earlier run has proven.  An interrupted sweep loses at most
  the cell in flight.

Results are bit-identical to the naive loop: nothing here changes the
math, only when it runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..errors import ReproError
from ..optimize import input_bandwidth_objective, mac_energy_objective
from ..robustness.faults import FailureRecord, classify_failure
from ..telemetry.events import open_event_bus
from ..telemetry.resources import sample_resources
from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass(frozen=True)
class SweepSpec:
    """The grid a sweep covers."""

    models: Sequence[str] = ("lenet",)
    accuracy_drops: Sequence[float] = (0.01, 0.05)
    objectives: Sequence[str] = ("input", "mac")

    def cells(self) -> Iterator[tuple]:
        """Cells in execution order: model-major, then drop, objective.

        Model-major order maximizes in-process sharing (one optimizer
        per model); drops before objectives so each sigma search is
        immediately reused by every objective at that drop.
        """
        for model in self.models:
            for drop in self.accuracy_drops:
                for objective in self.objectives:
                    yield model, float(drop), objective

    @property
    def num_cells(self) -> int:
        return (
            len(self.models)
            * len(self.accuracy_drops)
            * len(self.objectives)
        )


@dataclass
class SweepCellResult:
    """One finished grid cell."""

    model: str
    accuracy_drop: float
    objective: str
    sigma: float
    effective_input_bits: float
    effective_mac_bits: float
    baseline_accuracy: float
    validated_accuracy: Optional[float]
    target_accuracy: float
    bitwidths: Dict[str, int]
    degraded: bool
    elapsed_seconds: float

    @property
    def meets_constraint(self) -> Optional[bool]:
        if self.validated_accuracy is None:
            return None
        return self.validated_accuracy >= self.target_accuracy

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "drop": self.accuracy_drop,
            "objective": self.objective,
            "sigma": self.sigma,
            "eff_input_bits": self.effective_input_bits,
            "eff_mac_bits": self.effective_mac_bits,
            "baseline_accuracy": self.baseline_accuracy,
            "validated_accuracy": self.validated_accuracy,
            "meets_constraint": self.meets_constraint,
            "bitwidths": self.bitwidths,
            "degraded": self.degraded,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def identity_dict(self) -> Dict[str, object]:
        """The row minus wall-clock timing: the bit-identity surface.

        Two cells computed from the same inputs must agree on exactly
        this dict — across serial vs distributed execution, any worker
        count, and any crash/re-dispatch history.  Only
        ``elapsed_seconds`` legitimately differs between runs.
        """
        row = self.as_dict()
        del row["elapsed_seconds"]
        return row


@dataclass
class SweepCellFailure:
    """One grid cell that raised instead of finishing (``keep_going``)."""

    model: str
    accuracy_drop: Optional[float]
    objective: Optional[str]
    failure: FailureRecord
    elapsed_seconds: float

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "model": self.model,
            "drop": self.accuracy_drop,
            "objective": self.objective,
            "status": "failed",
            "elapsed_seconds": self.elapsed_seconds,
        }
        row.update(self.failure.as_dict())
        return row


@dataclass
class SweepReport:
    """Every cell of a finished sweep plus shared-work accounting."""

    cells: List[SweepCellResult] = field(default_factory=list)
    #: Cells that raised, recorded instead of aborting the grid
    #: (only populated when ``run_sweep(..., keep_going=True)``).
    failures: List[SweepCellFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Persistent-cache counters summed over every model's optimizer
    #: (zeros when the sweep ran without a cache directory).
    cache_counters: Dict[str, int] = field(default_factory=dict)
    cache_dir: Optional[str] = None

    def rows(self) -> List[Dict[str, object]]:
        return [cell.as_dict() for cell in self.cells]

    def failure_rows(self) -> List[Dict[str, object]]:
        return [failure.as_dict() for failure in self.failures]

    def lines(self) -> List[str]:
        out = []
        for cell in self.cells:
            status = {True: "ok", False: "MISS", None: "-"}[
                cell.meets_constraint
            ]
            out.append(
                f"{cell.model:<12} drop={cell.accuracy_drop:<6.3g} "
                f"{cell.objective:<6} eff_in={cell.effective_input_bits:6.2f} "
                f"eff_mac={cell.effective_mac_bits:6.2f} "
                f"[{status}] {cell.elapsed_seconds:6.2f}s"
            )
        for failure in self.failures:
            out.append(
                f"{failure.model:<12} drop={failure.accuracy_drop!s:<6} "
                f"{str(failure.objective):<6} [FAILED] "
                f"{failure.failure.error_class} at {failure.failure.stage} "
                f"({failure.failure.traceback_digest})"
            )
        hits = self.cache_counters.get("hits", 0)
        misses = self.cache_counters.get("misses", 0)
        failed = f", {len(self.failures)} failed" if self.failures else ""
        out.append(
            f"{len(self.cells)} cells in {self.elapsed_seconds:.2f}s"
            f"{failed}; cache: {hits} hits / {misses} misses"
            + (f" ({self.cache_dir})" if self.cache_dir else " (off)")
        )
        return out


#: Builds the per-model context a sweep runs against; the default is
#: :func:`~repro.experiments.common.make_context`.  The ablation runner
#: substitutes factories that perturb the substrate or override
#: optimizer construction (see :mod:`repro.robustness.runner`).
ContextFactory = Callable[[ExperimentConfig], ExperimentContext]

#: Executes one cell against a ready optimizer; the default calls
#: ``optimizer.optimize(objective, accuracy_drop=drop)``.  Variants can
#: substitute e.g. the equal-xi allocator while reusing the grid loop,
#: fault isolation, and reporting.
OptimizeFn = Callable[[object, str, float], object]


def _default_optimize(optimizer: Any, objective: str, drop: float) -> Any:
    return optimizer.optimize(objective, accuracy_drop=drop)


def sweep_cell_id(model: str, drop: float, objective: str) -> str:
    """The canonical event-bus name of one grid cell."""
    return f"{model}/drop={drop:g}/{objective}"


def _cache_counts(optimizer: Any) -> Dict[str, int]:
    cache = getattr(optimizer, "cache", None)
    if cache is None:
        return {}
    return dict(cache.counters.as_dict())


def _restored_total(optimizer: Any) -> int:
    telemetry = getattr(optimizer, "telemetry", None)
    if telemetry is None:
        return 0
    return int(
        telemetry.metrics.counter("repro_outcome_restored_total").value
    )


def run_sweep(
    spec: Optional[SweepSpec] = None,
    config: Optional[ExperimentConfig] = None,
    progress: bool = False,
    keep_going: bool = False,
    context_factory: Optional[ContextFactory] = None,
    optimize_fn: Optional[OptimizeFn] = None,
) -> SweepReport:
    """Execute a sweep grid with cross-cell work sharing.

    Equivalent to calling ``optimizer.optimize(objective, drop)`` for
    every cell — the report's numbers are bit-identical to the naive
    per-cell loop — but profiles, stats, baseline accuracies, and
    sigma evaluations are computed at most once per model, and at most
    once *ever* when a persistent cache directory is configured.

    With ``keep_going`` a raising cell no longer aborts the grid: the
    failure is classified (:func:`repro.robustness.classify_failure`)
    and recorded in :attr:`SweepReport.failures`, and the remaining
    cells run to completion.  A failure while *building a model's
    context* records one failed row per cell of that model.  The
    default (``keep_going=False``) keeps the historical fail-fast
    behaviour.
    """
    spec = spec or SweepSpec()
    config = config or ExperimentConfig()
    if spec.num_cells == 0:
        raise ReproError("sweep spec has no cells")
    make = context_factory or make_context
    optimize = optimize_fn or _default_optimize
    report = SweepReport(cache_dir=config.resolved_cache_dir())
    totals: Dict[str, int] = {}
    bus = open_event_bus(config.events_dir)
    start = time.perf_counter()
    bus.run_started(total_cells=spec.num_cells, kind="sweep")
    for model, drop, objective in spec.cells():
        bus.cell("queued", sweep_cell_id(model, drop, objective))
    try:
        for model in spec.models:
            model_start = time.perf_counter()
            try:
                context = make(replace(config, model=model))
                optimizer = context.optimizer
                stats = optimizer.stats()
                rho_in = input_bandwidth_objective(stats).rho
                rho_mac = mac_energy_objective(stats).rho
            except Exception as exc:
                if not keep_going:
                    raise
                elapsed = time.perf_counter() - model_start
                failure = classify_failure(exc, stage_hint="context")
                for cell_model, drop, objective in spec.cells():
                    if cell_model != model:
                        continue
                    report.failures.append(
                        SweepCellFailure(
                            model=model,
                            accuracy_drop=drop,
                            objective=objective,
                            failure=failure,
                            elapsed_seconds=elapsed,
                        )
                    )
                    bus.cell(
                        "failed",
                        sweep_cell_id(model, drop, objective),
                        stage="context",
                        error_class=failure.error_class,
                    )
                    elapsed = 0.0  # charge the build once, to the first cell
                continue
            for cell_model, drop, objective in spec.cells():
                if cell_model != model:
                    continue
                cell_id = sweep_cell_id(model, drop, objective)
                cache_before = _cache_counts(optimizer)
                restored_before = _restored_total(optimizer)
                bus.cell("running", cell_id)
                cell_start = time.perf_counter()
                try:
                    outcome = optimize(optimizer, objective, drop)
                except Exception as exc:
                    if not keep_going:
                        raise
                    failure = classify_failure(exc)
                    report.failures.append(
                        SweepCellFailure(
                            model=model,
                            accuracy_drop=drop,
                            objective=objective,
                            failure=failure,
                            elapsed_seconds=time.perf_counter() - cell_start,
                        )
                    )
                    bus.cell(
                        "failed",
                        cell_id,
                        stage=failure.stage,
                        error_class=failure.error_class,
                    )
                    continue
                cell_elapsed = time.perf_counter() - cell_start
                cache_after = _cache_counts(optimizer)
                cache_hits = cache_after.get("hits", 0) - cache_before.get(
                    "hits", 0
                )
                cache_misses = cache_after.get(
                    "misses", 0
                ) - cache_before.get("misses", 0)
                if _restored_total(optimizer) > restored_before:
                    bus.cell("cached-hit", cell_id)
                allocation = outcome.result.allocation
                cell = SweepCellResult(
                    model=model,
                    accuracy_drop=drop,
                    objective=objective,
                    sigma=outcome.result.sigma,
                    effective_input_bits=allocation.effective_bitwidth(rho_in),
                    effective_mac_bits=allocation.effective_bitwidth(rho_mac),
                    baseline_accuracy=outcome.baseline_accuracy,
                    validated_accuracy=outcome.validated_accuracy,
                    target_accuracy=outcome.sigma_result.target_accuracy,
                    bitwidths=outcome.bitwidths,
                    degraded=outcome.degraded,
                    elapsed_seconds=cell_elapsed,
                )
                report.cells.append(cell)
                if bus.enabled:
                    bus.cell(
                        "done",
                        cell_id,
                        elapsed_seconds=cell_elapsed,
                        cache_hits=cache_hits,
                        cache_misses=cache_misses,
                        degraded=bool(outcome.degraded),
                        peak_rss_bytes=sample_resources().peak_rss_bytes,
                    )
                if progress:  # pragma: no cover - console nicety
                    print("  " + report.lines()[len(report.cells) - 1])
            if optimizer.cache is not None:
                for key, value in optimizer.cache.counters.as_dict().items():
                    totals[key] = totals.get(key, 0) + value
    finally:
        bus.run_finished(
            cells_done=len(report.cells), cells_failed=len(report.failures)
        )
        bus.close()
    report.elapsed_seconds = time.perf_counter() - start
    report.cache_counters = totals
    return report
