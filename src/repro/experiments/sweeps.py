"""Parameter sweeps: the trade curves the paper's tables sample.

Table III samples two accuracy constraints (1%, 5%); the method's real
product is the whole *bits-vs-accuracy curve* — how the effective
bitwidth falls as the user relaxes the constraint.  ``run_drop_sweep``
traces it, reusing the cached profiling so each extra point costs one
sigma search + one optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..optimize import input_bandwidth_objective, mac_energy_objective
from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass
class DropSweepPoint:
    """One accuracy constraint on the trade curve."""

    accuracy_drop: float
    sigma: float
    effective_input_bits: float
    effective_mac_bits: float
    validated_accuracy: float
    target_accuracy: float
    bitwidths: Dict[str, int]

    @property
    def meets_constraint(self) -> bool:
        return self.validated_accuracy >= self.target_accuracy


@dataclass
class DropSweepResult:
    model: str
    objective: str
    points: List[DropSweepPoint]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "drop": f"{p.accuracy_drop:.1%}",
                "sigma": p.sigma,
                "eff_input_bits": p.effective_input_bits,
                "eff_mac_bits": p.effective_mac_bits,
                "accuracy": p.validated_accuracy,
            }
            for p in self.points
        ]

    @property
    def is_monotone(self) -> bool:
        """Looser constraints must never need more (effective) bits."""
        bits = [p.effective_input_bits for p in self.points]
        return all(b1 >= b2 - 0.3 for b1, b2 in zip(bits, bits[1:]))


def run_drop_sweep(
    config: Optional[ExperimentConfig] = None,
    objective: str = "input",
    accuracy_drops: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.10),
    context: Optional[ExperimentContext] = None,
) -> DropSweepResult:
    """Trace the bits-vs-accuracy-drop curve for one network."""
    context = context or make_context(config)
    optimizer = context.optimizer
    stats = optimizer.stats()
    rho_in = input_bandwidth_objective(stats).rho
    rho_mac = mac_energy_objective(stats).rho
    points = []
    for drop in sorted(accuracy_drops):
        outcome = optimizer.optimize(objective, accuracy_drop=drop)
        allocation = outcome.result.allocation
        points.append(
            DropSweepPoint(
                accuracy_drop=drop,
                sigma=outcome.result.sigma,
                effective_input_bits=allocation.effective_bitwidth(rho_in),
                effective_mac_bits=allocation.effective_bitwidth(rho_mac),
                validated_accuracy=outcome.validated_accuracy,
                target_accuracy=outcome.sigma_result.target_accuracy,
                bitwidths=outcome.bitwidths,
            )
        )
    return DropSweepResult(
        model=context.config.model, objective=objective, points=points
    )
