"""Table II driver: AlexNet, two objectives, 1% accuracy drop.

Reproduces every row of the paper's Table II on the substrate replica:
per-layer ``#Input``, ``#MAC``, ``max|X_K|``, the search-based baseline
bitwidths with their ``#Input_bits`` / ``#MAC_bits`` totals, and the
two optimized rows (``Opt_for_#Input``, ``Opt_for_#MAC``) with the
recomputed objective totals and percentage savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines import stripes_search
from ..optimize import input_bandwidth_objective, mac_energy_objective
from .common import ExperimentConfig, ExperimentContext, make_context


@dataclass
class Table2Result:
    """All rows of Table II for one network."""

    layer_names: List[str]
    num_inputs: Dict[str, int]
    num_macs: Dict[str, int]
    max_abs: Dict[str, float]
    integer_bits: Dict[str, int]
    sigma: float
    baseline_bits: Dict[str, int]
    baseline_input_bits: float
    baseline_mac_bits: float
    opt_input_bits_per_layer: Dict[str, int]
    opt_input_total_input_bits: float
    opt_mac_bits_per_layer: Dict[str, int]
    opt_mac_total_mac_bits: float
    input_saving_percent: float
    mac_saving_percent: float
    opt_input_accuracy: Optional[float]
    opt_mac_accuracy: Optional[float]
    baseline_accuracy: float
    xi_input: Dict[str, float]
    xi_mac: Dict[str, float]

    def rows(self) -> List[Dict[str, object]]:
        """Table II as printable rows (layers as columns)."""
        names = self.layer_names

        def row(label: str, values: Dict) -> Dict[str, object]:
            out: Dict[str, object] = {"row": label}
            for name in names:
                out[name] = values[name]
            return out

        return [
            row("#Input", self.num_inputs),
            row("#MAC", self.num_macs),
            row("max|X_K|", {n: round(self.max_abs[n], 1) for n in names}),
            row("Baseline(search)", self.baseline_bits),
            row("Opt_for_#Input", self.opt_input_bits_per_layer),
            row("Opt_for_#MAC", self.opt_mac_bits_per_layer),
        ]


def run_table2(
    config: Optional[ExperimentConfig] = None,
    accuracy_drop: float = 0.01,
    context: Optional[ExperimentContext] = None,
) -> Table2Result:
    """Execute the Table II experiment end to end."""
    context = context or make_context(config)
    optimizer = context.optimizer
    names = optimizer.layer_names
    stats = optimizer.stats()
    ordered = optimizer.ordered_stats()

    baseline = stripes_search(
        context.network,
        context.test,
        ordered,
        optimizer.baseline_accuracy(),
        accuracy_drop,
    )
    out_input = optimizer.optimize("input", accuracy_drop=accuracy_drop)
    out_mac = optimizer.optimize("mac", accuracy_drop=accuracy_drop)

    rho_input = input_bandwidth_objective(stats).rho
    rho_mac = mac_energy_objective(stats).rho
    baseline_input_bits = baseline.allocation.weighted_bits(rho_input)
    baseline_mac_bits = baseline.allocation.weighted_bits(rho_mac)
    opt_input_cost = out_input.result.allocation.weighted_bits(rho_input)
    opt_mac_cost = out_mac.result.allocation.weighted_bits(rho_mac)

    return Table2Result(
        layer_names=names,
        num_inputs={n: stats[n].num_inputs for n in names},
        num_macs={n: stats[n].num_macs for n in names},
        max_abs={n: stats[n].max_abs_input for n in names},
        integer_bits={n: stats[n].integer_bits for n in names},
        sigma=out_input.sigma_result.sigma,
        baseline_bits=baseline.allocation.bitwidths(),
        baseline_input_bits=baseline_input_bits,
        baseline_mac_bits=baseline_mac_bits,
        opt_input_bits_per_layer=out_input.bitwidths,
        opt_input_total_input_bits=opt_input_cost,
        opt_mac_bits_per_layer=out_mac.bitwidths,
        opt_mac_total_mac_bits=opt_mac_cost,
        input_saving_percent=100.0
        * (baseline_input_bits - opt_input_cost)
        / baseline_input_bits,
        mac_saving_percent=100.0
        * (baseline_mac_bits - opt_mac_cost)
        / baseline_mac_bits,
        opt_input_accuracy=out_input.validated_accuracy,
        opt_mac_accuracy=out_mac.validated_accuracy,
        baseline_accuracy=optimizer.baseline_accuracy(),
        xi_input=out_input.result.xi,
        xi_mac=out_mac.result.xi,
    )
