"""Ablation & scenario-robustness campaigns (``repro ablate``).

A campaign is a grid of fault-isolated cells: the ablation matrix
(baseline + one variant per toggled pipeline component, see
:mod:`repro.robustness.matrix`) crossed with the requested models, plus
one cell per requested scenario (:mod:`repro.robustness.scenarios`).
Each cell runs through the incremental sweep scheduler, so shared work
(profiles, sigma evaluations) is reused in-process and — with a cache
directory — across cells and across runs.

Fault isolation is the campaign's contract: a crashing cell (including
injected chaos) becomes a structured ``failed`` row carrying the error
class, the pipeline stage, and a traceback digest, and every other
cell still runs.  ``strict`` restores fail-fast.  With a state
directory the campaign checkpoints each finished row and ``--resume``
re-executes only the cells that failed or never ran; the campaign
fingerprint pins the grid + configuration so a directory can never mix
rows from two different campaigns.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..robustness import (
    CampaignCell,
    CampaignRow,
    CampaignState,
    baseline_variant,
    build_matrix,
    build_report,
    execute_cell,
    resolve_scenario,
)
from ..robustness.report import AblationReport
from ..telemetry.manifest import build_manifest, config_hash
from ..telemetry.session import Telemetry
from .common import ExperimentConfig


@dataclass(frozen=True)
class AblationSpec:
    """What a campaign covers."""

    models: Sequence[str] = ("lenet",)
    accuracy_drop: float = 0.05
    objective: str = "input"
    #: Component toggles to ablate (None = every registered component).
    components: Optional[Sequence[str]] = None
    #: Scenario names to run (see ``repro.robustness.SCENARIOS``).
    scenarios: Sequence[str] = ()
    #: Cell ids that get a chaos crash injected on their first forward
    #: event (testing/demo hook for the fault-isolation contract).
    chaos_cells: Sequence[str] = ()


def build_campaign_cells(
    spec: AblationSpec, config: ExperimentConfig
) -> List[CampaignCell]:
    """The campaign's cell list, matrix-major then scenarios.

    Cell ids are stable across runs — ``component/<variant>/<model>``
    and ``scenario/<name>/<model>`` — which is what makes resume and
    chaos targeting addressable.
    """
    chaos = set(spec.chaos_cells)
    cells: List[CampaignCell] = []
    variants = build_matrix(config, spec.components)
    for model in spec.models:
        for variant in variants:
            cell_id = f"component/{variant.name}/{model}"
            cells.append(
                CampaignCell(
                    cell_id=cell_id,
                    kind="component",
                    variant=variant,
                    scenario=None,
                    model=model,
                    accuracy_drop=spec.accuracy_drop,
                    objective=spec.objective,
                    chaos=cell_id in chaos,
                )
            )
    for name in spec.scenarios:
        scenario = resolve_scenario(name)
        drop = float(
            scenario.params.get("accuracy_drop", spec.accuracy_drop)
        )
        for model in spec.models:
            cell_id = f"scenario/{name}/{model}"
            cells.append(
                CampaignCell(
                    cell_id=cell_id,
                    kind="scenario",
                    variant=baseline_variant(),
                    scenario=scenario,
                    model=model,
                    accuracy_drop=drop,
                    objective=spec.objective,
                    chaos=cell_id in chaos,
                )
            )
    known = {cell.cell_id for cell in cells}
    unknown = sorted(chaos - known)
    if unknown:
        raise ReproError(
            f"chaos cells {unknown!r} are not in the campaign; "
            f"known ids: {sorted(known)}"
        )
    return cells


def campaign_fingerprint(
    spec: AblationSpec, config: ExperimentConfig
) -> str:
    """Identity hash of the campaign: the grid + the configuration.

    Chaos injection and the state directory are deliberately excluded:
    a campaign crashed *by* chaos must resume cleanly without it, and
    the resume directory names where state lives, not what is measured.
    Observability knobs (telemetry, traces, the event bus) are excluded
    for the same reason — they never touch what is measured, and a
    resume must not be refused because monitoring was toggled.
    """
    plain = asdict(config)
    plain.pop("state_dir", None)
    plain.pop("telemetry", None)
    plain.pop("trace_out", None)
    plain.pop("events_dir", None)
    cells = build_campaign_cells(
        AblationSpec(
            models=tuple(spec.models),
            accuracy_drop=spec.accuracy_drop,
            objective=spec.objective,
            components=spec.components,
            scenarios=tuple(spec.scenarios),
            chaos_cells=(),
        ),
        config,
    )
    payload = {
        "cells": [cell.cell_id for cell in cells],
        "config": plain,
        "accuracy_drop": spec.accuracy_drop,
        "objective": spec.objective,
    }
    return config_hash(payload)


def _campaign_manifest(
    spec: AblationSpec,
    config: ExperimentConfig,
    cells: Sequence[CampaignCell],
) -> Dict[str, object]:
    manifest = build_manifest(
        config={
            "campaign": campaign_fingerprint(spec, config),
            "models": list(spec.models),
            "accuracy_drop": spec.accuracy_drop,
            "objective": spec.objective,
            "components": (
                None
                if spec.components is None
                else list(spec.components)
            ),
            "scenarios": list(spec.scenarios),
            "num_cells": len(cells),
            "experiment_config": asdict(config),
        },
        seed=config.seed,
        model=",".join(spec.models),
    )
    return manifest.as_dict()


def run_ablation_campaign(
    spec: Optional[AblationSpec] = None,
    config: Optional[ExperimentConfig] = None,
    state_dir: Optional[str] = None,
    progress: bool = False,
) -> AblationReport:
    """Execute (or resume) a campaign and measure component importance.

    ``config.strict`` turns the per-cell fault boundary off: the first
    failing cell raises instead of becoming a ``failed`` row.  With
    ``state_dir`` every finished row is checkpointed; on a re-run,
    ``ok`` rows are loaded (marked ``resumed``) and only failed or
    missing cells execute.
    """
    spec = spec or AblationSpec()
    config = config or ExperimentConfig()
    cells = build_campaign_cells(spec, config)
    manifest = _campaign_manifest(spec, config, cells)
    state: Optional[CampaignState] = None
    prior: Dict[str, CampaignRow] = {}
    if state_dir:
        state = CampaignState(state_dir)
        state.bind(campaign_fingerprint(spec, config))
        prior = state.load_rows()
    telemetry = Telemetry.create(config.telemetry_settings())
    bus = telemetry.event_bus
    keep_going = not config.strict
    rows: List[CampaignRow] = []
    executed: List[str] = []
    start = time.perf_counter()
    bus.run_started(total_cells=len(cells), kind="ablate")
    for cell in cells:
        bus.cell("queued", cell.cell_id, kind=cell.kind)
    with telemetry.tracer.span(
        "ablate.campaign",
        cells=len(cells),
        models=",".join(spec.models),
        objective=spec.objective,
    ):
        for cell in cells:
            earlier = prior.get(cell.cell_id)
            if earlier is not None and earlier.status == "ok":
                earlier.resumed = True
                rows.append(earlier)
                bus.cell("cached-hit", cell.cell_id, resumed=True)
                bus.cell("done", cell.cell_id, resumed=True)
                if progress:  # pragma: no cover - console nicety
                    print(f"  {cell.cell_id}: resumed")
                continue
            bus.cell("running", cell.cell_id)
            with telemetry.tracer.span(
                "ablate.cell",
                cell_id=cell.cell_id,
                kind=cell.kind,
                chaos=cell.chaos,
            ) as cell_span, telemetry.resources.measure(
                "ablate.cell", span=cell_span
            ):
                row = execute_cell(
                    cell,
                    config,
                    keep_going=keep_going,
                    telemetry=telemetry,
                )
            telemetry.metrics.counter(
                f"ablate_cells_{row.status}_total"
            ).inc()
            if state is not None:
                state.save_row(row)
            rows.append(row)
            executed.append(cell.cell_id)
            if row.status == "ok":
                bus.cell(
                    "done",
                    cell.cell_id,
                    elapsed_seconds=row.elapsed_seconds,
                )
            else:
                bus.cell(
                    "failed",
                    cell.cell_id,
                    elapsed_seconds=row.elapsed_seconds,
                    error_class=(
                        row.failure.error_class
                        if row.failure is not None
                        else ""
                    ),
                )
            if progress:  # pragma: no cover - console nicety
                print(
                    f"  {cell.cell_id}: {row.status} "
                    f"({row.elapsed_seconds:.2f}s)"
                )
    bus.run_finished(
        cells_done=sum(1 for row in rows if row.status == "ok"),
        cells_failed=sum(1 for row in rows if row.status != "ok"),
    )
    elapsed = time.perf_counter() - start
    report = build_report(
        rows,
        elapsed_seconds=elapsed,
        manifest=manifest,
        cache_dir=config.resolved_cache_dir(),
        executed_cell_ids=executed,
    )
    if config.trace_out:
        telemetry.export()
    return report


__all__ = [
    "AblationSpec",
    "build_campaign_cells",
    "campaign_fingerprint",
    "run_ablation_campaign",
]
