"""Table III driver: all eight networks, 1% and 5% drops, both objectives.

For each network and accuracy constraint the driver reports the same
columns as the paper's Table III:

* ``W`` — searched uniform weight bitwidth (Sec. V-E),
* baseline effective bitwidths (Input and MAC views),
* ``Optimized Input`` effective bitwidths + ``BW save`` (%),
* ``Optimized MAC`` effective bitwidths + ``Ener save`` (%),

with the baseline chosen as in the paper: a dynamic-search assignment
("search", Stripes-style) where affordable, otherwise the smallest
accuracy-preserving uniform width ("uniform").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..baselines import smallest_uniform_bitwidth, stripes_search
from ..errors import ReproError
from ..hardware import MacEnergyModel, uniform_weight_bits
from ..optimize import input_bandwidth_objective, mac_energy_objective
from .common import ExperimentConfig, make_context


@dataclass
class Table3Row:
    """One (network, accuracy-drop) row of Table III."""

    model: str
    num_layers: int
    accuracy_drop: float
    weight_bits: int
    baseline_effective_input: float
    baseline_effective_mac: float
    opt_input_effective_input: float
    opt_input_effective_mac: float
    bw_save_percent: float
    opt_mac_effective_input: float
    opt_mac_effective_mac: float
    energy_save_percent: float
    baseline_accuracy: float
    opt_input_accuracy: Optional[float]
    opt_mac_accuracy: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "#layers": self.num_layers,
            "drop": f"{self.accuracy_drop:.0%}",
            "W": self.weight_bits,
            "base_in": self.baseline_effective_input,
            "base_mac": self.baseline_effective_mac,
            "optIn_in": self.opt_input_effective_input,
            "optIn_mac": self.opt_input_effective_mac,
            "BW_save%": self.bw_save_percent,
            "optMac_in": self.opt_mac_effective_input,
            "optMac_mac": self.opt_mac_effective_mac,
            "Ener_save%": self.energy_save_percent,
        }


def run_table3_row(
    model: str,
    accuracy_drop: float,
    config: Optional[ExperimentConfig] = None,
    baseline: str = "uniform",
    energy_model: MacEnergyModel = MacEnergyModel(),
) -> Table3Row:
    """Compute one row (one network at one accuracy constraint)."""
    if baseline not in ("uniform", "search"):
        raise ReproError('baseline must be "uniform" or "search"')
    config = replace(config or ExperimentConfig(), model=model)
    context = make_context(config)
    optimizer = context.optimizer
    stats = optimizer.stats()
    ordered = optimizer.ordered_stats()
    base_acc = optimizer.baseline_accuracy()

    if baseline == "search":
        base = stripes_search(
            context.network, context.test, ordered, base_acc, accuracy_drop
        )
        base_alloc = base.allocation
    else:
        base = smallest_uniform_bitwidth(
            context.network, context.test, ordered, base_acc, accuracy_drop
        )
        base_alloc = base.allocation

    out_input = optimizer.optimize(
        "input", accuracy_drop=accuracy_drop, search_weights=True
    )
    out_mac = optimizer.optimize("mac", accuracy_drop=accuracy_drop)

    rho_input = input_bandwidth_objective(stats).rho
    rho_mac = mac_energy_objective(stats).rho

    base_eff_in = base_alloc.effective_bitwidth(rho_input)
    base_eff_mac = base_alloc.effective_bitwidth(rho_mac)
    opt_in_eff_in = out_input.result.allocation.effective_bitwidth(rho_input)
    opt_in_eff_mac = out_input.result.allocation.effective_bitwidth(rho_mac)
    opt_mac_eff_in = out_mac.result.allocation.effective_bitwidth(rho_input)
    opt_mac_eff_mac = out_mac.result.allocation.effective_bitwidth(rho_mac)

    weight_bits = (
        out_input.weight_search.bits if out_input.weight_search else 16
    )
    wbits = uniform_weight_bits(base_alloc, weight_bits)
    base_energy = energy_model.network_energy_pj(stats, base_alloc, wbits)
    opt_energy = energy_model.network_energy_pj(
        stats, out_mac.result.allocation, wbits
    )

    return Table3Row(
        model=model,
        num_layers=len(optimizer.layer_names),
        accuracy_drop=accuracy_drop,
        weight_bits=weight_bits,
        baseline_effective_input=base_eff_in,
        baseline_effective_mac=base_eff_mac,
        opt_input_effective_input=opt_in_eff_in,
        opt_input_effective_mac=opt_in_eff_mac,
        bw_save_percent=100.0 * (base_eff_in - opt_in_eff_in) / base_eff_in,
        opt_mac_effective_input=opt_mac_eff_in,
        opt_mac_effective_mac=opt_mac_eff_mac,
        energy_save_percent=100.0 * (base_energy - opt_energy) / base_energy,
        baseline_accuracy=base_acc,
        opt_input_accuracy=out_input.validated_accuracy,
        opt_mac_accuracy=out_mac.validated_accuracy,
    )


def run_table3(
    models: Sequence[str],
    accuracy_drops: Sequence[float] = (0.01, 0.05),
    config: Optional[ExperimentConfig] = None,
    baseline: str = "uniform",
) -> List[Table3Row]:
    """All rows of Table III for the requested networks."""
    rows = []
    for model in models:
        for drop in accuracy_drops:
            rows.append(
                run_table3_row(model, drop, config=config, baseline=baseline)
            )
    return rows


def average_savings(rows: Sequence[Table3Row]) -> Dict[str, float]:
    """The paper's ``Average`` row (per accuracy level)."""
    if not rows:
        raise ReproError("no rows to average")
    return {
        "bw_save_percent": sum(r.bw_save_percent for r in rows) / len(rows),
        "energy_save_percent": sum(r.energy_save_percent for r in rows)
        / len(rows),
    }
