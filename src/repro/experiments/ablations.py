"""Ablation drivers for the design decisions DESIGN.md calls out.

1. xi optimization vs the equal scheme (the paper's headline mechanism).
2. Scheme 1 vs Scheme 2 sigma-search agreement (Fig. 3's premise).
3. Profiling sample-size stability (paper: "50-200 images produce
   stable regression results"; ~20 delta points suffice).
4. Negative-fraction-bit (integer-bit dropping) on/off.
5. Variance additivity (Eq. 6): joint-injection sigma vs the
   root-sum-square of per-layer sigmas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis import (
    BudgetVerification,
    ErrorProfiler,
    Scheme1Evaluator,
    Scheme2Evaluator,
    deltas_for_sigma,
    find_sigma,
    output_error_std,
)
from ..config import ProfileSettings
from ..optimize import (
    allocate_equal_scheme,
    allocate_optimized,
    resolve_objective,
)
from ..quant.allocation import BitwidthAllocation
from .common import ExperimentConfig, ExperimentContext, make_context


# ----------------------------------------------------------------------
# 1. xi optimization vs equal scheme
# ----------------------------------------------------------------------
@dataclass
class XiAblationResult:
    model: str
    objective: str
    equal_cost_bits: float
    optimized_cost_bits: float

    @property
    def improvement_percent(self) -> float:
        return (
            100.0
            * (self.equal_cost_bits - self.optimized_cost_bits)
            / self.equal_cost_bits
        )


def run_xi_ablation(
    config: Optional[ExperimentConfig] = None,
    objective: str = "mac",
    accuracy_drop: float = 0.05,
    context: Optional[ExperimentContext] = None,
) -> XiAblationResult:
    context = context or make_context(config)
    optimizer = context.optimizer
    stats = optimizer.stats()
    sigma = optimizer.sigma_for_drop(accuracy_drop).sigma
    profiles = optimizer.profile().profiles
    names = optimizer.layer_names
    rho = resolve_objective(objective, stats).rho
    equal = allocate_equal_scheme(profiles, stats, sigma, ordered_names=names)
    optimized = allocate_optimized(
        objective, profiles, stats, sigma, ordered_names=names
    )
    return XiAblationResult(
        model=context.config.model,
        objective=objective,
        equal_cost_bits=equal.allocation.weighted_bits(rho),
        optimized_cost_bits=optimized.allocation.weighted_bits(rho),
    )


# ----------------------------------------------------------------------
# 2. Scheme 1 vs Scheme 2 agreement
# ----------------------------------------------------------------------
@dataclass
class SchemeAgreementResult:
    model: str
    sigma_scheme1: float
    sigma_scheme2: float

    @property
    def relative_gap(self) -> float:
        denom = max(self.sigma_scheme1, self.sigma_scheme2)
        if denom == 0:
            return 0.0
        return abs(self.sigma_scheme1 - self.sigma_scheme2) / denom


def run_scheme_agreement(
    config: Optional[ExperimentConfig] = None,
    accuracy_drop: float = 0.05,
    context: Optional[ExperimentContext] = None,
) -> SchemeAgreementResult:
    context = context or make_context(config)
    optimizer = context.optimizer
    base = optimizer.baseline_accuracy()
    profiles = optimizer.profile().profiles
    s1 = Scheme1Evaluator(
        context.network, context.test, profiles, seed=context.config.seed
    )
    s2 = Scheme2Evaluator(
        context.network, context.test, seed=context.config.seed
    )
    settings = context.config.search_settings()
    r1 = find_sigma(s1.accuracy, base, accuracy_drop, settings)
    r2 = find_sigma(s2.accuracy, base, accuracy_drop, settings)
    return SchemeAgreementResult(
        model=context.config.model,
        sigma_scheme1=r1.sigma,
        sigma_scheme2=r2.sigma,
    )


# ----------------------------------------------------------------------
# 3. Profiling sample-size stability
# ----------------------------------------------------------------------
@dataclass
class StabilityPoint:
    num_images: int
    num_points: int
    lam_by_layer: Dict[str, float]


@dataclass
class StabilityResult:
    model: str
    points: List[StabilityPoint]

    def lam_spread(self, layer: str) -> float:
        """Relative spread of lambda across settings (small = stable)."""
        values = np.array([p.lam_by_layer[layer] for p in self.points])
        return float((values.max() - values.min()) / values.mean())

    @property
    def worst_spread(self) -> float:
        layers = self.points[0].lam_by_layer
        return max(self.lam_spread(layer) for layer in layers)


def run_profile_stability(
    config: Optional[ExperimentConfig] = None,
    image_counts: tuple = (16, 32, 64),
    point_counts: tuple = (8, 12),
    context: Optional[ExperimentContext] = None,
) -> StabilityResult:
    context = context or make_context(config)
    points = []
    for num_images in image_counts:
        for num_points in point_counts:
            settings = ProfileSettings(
                num_images=num_images,
                num_delta_points=num_points,
                seed=context.config.seed,
            )
            profiler = ErrorProfiler(
                context.network, context.test.images, settings
            )
            report = profiler.profile()
            points.append(
                StabilityPoint(
                    num_images=num_images,
                    num_points=num_points,
                    lam_by_layer={p.name: p.lam for p in report},
                )
            )
    return StabilityResult(model=context.config.model, points=points)


# ----------------------------------------------------------------------
# 4. Negative fraction bits on/off
# ----------------------------------------------------------------------
@dataclass
class NegativeFractionResult:
    model: str
    cost_with_dropping: float
    cost_without_dropping: float

    @property
    def saving_percent(self) -> float:
        if self.cost_without_dropping == 0:
            return 0.0
        return (
            100.0
            * (self.cost_without_dropping - self.cost_with_dropping)
            / self.cost_without_dropping
        )


def run_negative_fraction_ablation(
    config: Optional[ExperimentConfig] = None,
    objective: str = "input",
    accuracy_drop: float = 0.05,
    context: Optional[ExperimentContext] = None,
) -> NegativeFractionResult:
    context = context or make_context(config)
    optimizer = context.optimizer
    stats = optimizer.stats()
    names = optimizer.layer_names
    sigma = optimizer.sigma_for_drop(accuracy_drop).sigma
    result = allocate_optimized(
        objective, optimizer.profile().profiles, stats, sigma,
        ordered_names=names,
    )
    rho = resolve_objective(objective, stats).rho
    ordered = [stats[name] for name in names]
    with_drop = BitwidthAllocation.from_deltas(
        ordered, result.deltas, allow_negative_fraction=True
    )
    without_drop = BitwidthAllocation.from_deltas(
        ordered, result.deltas, allow_negative_fraction=False
    )
    return NegativeFractionResult(
        model=context.config.model,
        cost_with_dropping=with_drop.weighted_bits(rho),
        cost_without_dropping=without_drop.weighted_bits(rho),
    )


# ----------------------------------------------------------------------
# 5. Variance additivity (Eq. 6)
# ----------------------------------------------------------------------
@dataclass
class AdditivityResult:
    model: str
    sigma_target: float
    sigma_predicted_rss: float
    sigma_measured: float

    @property
    def relative_error(self) -> float:
        if self.sigma_predicted_rss == 0:
            return 0.0
        return abs(
            self.sigma_measured - self.sigma_predicted_rss
        ) / self.sigma_predicted_rss


def run_additivity_check(
    config: Optional[ExperimentConfig] = None,
    sigma: float = 0.5,
    num_images: int = 64,
    context: Optional[ExperimentContext] = None,
) -> AdditivityResult:
    """Inject at all layers jointly; compare measured sigma_YL to Eq. 6.

    With the equal scheme each layer contributes sigma^2/L, so the
    root-sum-square prediction is simply ``sigma``.
    """
    context = context or make_context(config)
    optimizer = context.optimizer
    profiles = optimizer.profile().profiles
    deltas = deltas_for_sigma(profiles, sigma)
    rng = np.random.default_rng(context.config.seed)
    measured = output_error_std(
        context.network,
        context.test.images[:num_images],
        deltas,
        rng,
    )
    return AdditivityResult(
        model=context.config.model,
        sigma_target=sigma,
        sigma_predicted_rss=sigma,
        sigma_measured=measured,
    )


# ----------------------------------------------------------------------
# 6. Channelwise integer-width refinement (finer-granularity extension)
# ----------------------------------------------------------------------
@dataclass
class ChannelwiseResult:
    model: str
    layerwise_effective_bits: float
    channelwise_effective_bits: float
    layerwise_accuracy: float
    channelwise_accuracy: float

    @property
    def saving_percent(self) -> float:
        return (
            100.0
            * (self.layerwise_effective_bits - self.channelwise_effective_bits)
            / self.layerwise_effective_bits
        )


def run_channelwise_ablation(
    config: Optional[ExperimentConfig] = None,
    objective: str = "input",
    accuracy_drop: float = 0.05,
    context: Optional[ExperimentContext] = None,
) -> ChannelwiseResult:
    """Per-channel integer widths on top of the per-layer allocation."""
    from ..models.evaluate import top1_accuracy
    from ..quant import (
        channelwise_effective_bits,
        channelwise_refinement,
        channelwise_taps,
        measure_channel_ranges,
    )

    context = context or make_context(config)
    optimizer = context.optimizer
    outcome = optimizer.optimize(objective, accuracy_drop=accuracy_drop)
    allocation = outcome.result.allocation
    stats = optimizer.stats()
    rho = {name: float(stats[name].num_inputs) for name in allocation.names}
    spatial = [
        name
        for name in allocation.names
        if len(context.network[name].input_shapes[0]) == 3
    ]
    ranges = measure_channel_ranges(
        context.network, context.test.images[:64], spatial
    )
    refined = channelwise_refinement(allocation, ranges)
    chan_acc = top1_accuracy(
        context.network,
        context.test,
        taps=channelwise_taps(allocation, refined, context.network),
    )
    return ChannelwiseResult(
        model=context.config.model,
        layerwise_effective_bits=allocation.effective_bitwidth(rho),
        channelwise_effective_bits=channelwise_effective_bits(
            allocation, refined, stats
        ),
        layerwise_accuracy=outcome.validated_accuracy,
        channelwise_accuracy=chan_acc,
    )


# ----------------------------------------------------------------------
# 7. Percentile clipping (saturating integer ranges)
# ----------------------------------------------------------------------
@dataclass
class ClippingResult:
    model: str
    percentile: float
    unclipped_effective_bits: float
    clipped_effective_bits: float
    unclipped_accuracy: float
    clipped_accuracy: float

    @property
    def saving_percent(self) -> float:
        return (
            100.0
            * (self.unclipped_effective_bits - self.clipped_effective_bits)
            / self.unclipped_effective_bits
        )


def run_clipping_ablation(
    config: Optional[ExperimentConfig] = None,
    objective: str = "input",
    accuracy_drop: float = 0.05,
    percentile: float = 99.5,
    context: Optional[ExperimentContext] = None,
) -> ClippingResult:
    """Percentile-clipped integer widths on top of the allocation."""
    from ..models.evaluate import top1_accuracy
    from ..quant import clip_allocation, measure_percentile_ranges

    context = context or make_context(config)
    optimizer = context.optimizer
    outcome = optimizer.optimize(objective, accuracy_drop=accuracy_drop)
    allocation = outcome.result.allocation
    stats = optimizer.stats()
    rho = {name: float(stats[name].num_inputs) for name in allocation.names}
    ranges = measure_percentile_ranges(
        context.network,
        context.test.images[:64],
        allocation.names,
        percentile=percentile,
    )
    clipped = clip_allocation(allocation, ranges, percentile=percentile)
    clipped_acc = top1_accuracy(
        context.network, context.test, taps=clipped.taps(context.network)
    )
    return ClippingResult(
        model=context.config.model,
        percentile=percentile,
        unclipped_effective_bits=allocation.effective_bitwidth(rho),
        clipped_effective_bits=clipped.allocation.effective_bitwidth(rho),
        unclipped_accuracy=outcome.validated_accuracy,
        clipped_accuracy=clipped_acc,
    )


# ----------------------------------------------------------------------
# 8. Error-budget audit (Eq. 6/7 with true quantization)
# ----------------------------------------------------------------------
def run_budget_audit(
    config: Optional[ExperimentConfig] = None,
    objective: str = "input",
    accuracy_drop: float = 0.05,
    num_images: int = 48,
    context: Optional[ExperimentContext] = None,
) -> BudgetVerification:
    """Audit an optimized allocation's error budget on true rounding.

    Returns a :class:`repro.analysis.BudgetVerification`: per-layer
    measured vs budgeted output-error contributions and the joint check.
    """
    from ..analysis import verify_error_budget

    context = context or make_context(config)
    optimizer = context.optimizer
    outcome = optimizer.optimize(objective, accuracy_drop=accuracy_drop)
    return verify_error_budget(
        context.network,
        context.test.images[:num_images],
        outcome.result.allocation,
        sigma=outcome.result.sigma,
        xi=outcome.result.xi,
    )
