"""Run the whole evaluation as one suite and export the artifacts.

``run_suite`` executes every experiment driver the repo has — all the
paper's tables and figures plus the ablations — on one configuration,
returning a dict of results and optionally exporting each as JSON into
an output directory.  This is the one-command artifact regeneration the
CLI exposes as ``repro suite``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from .ablations import (
    run_additivity_check,
    run_budget_audit,
    run_channelwise_ablation,
    run_clipping_ablation,
    run_negative_fraction_ablation,
    run_profile_stability,
    run_scheme_agreement,
    run_xi_ablation,
)
from .common import ExperimentConfig, make_context
from .cost import run_cost_comparison
from .export import export_json
from .fig1 import run_fig1
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .table2 import run_table2
from .table3 import run_table3

PathLike = Union[str, Path]

#: Experiment names in execution order.
SUITE_EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig3",
    "table2",
    "table3",
    "fig4",
    "cost",
    "ablation_xi",
    "ablation_scheme",
    "ablation_stability",
    "ablation_negative_f",
    "ablation_additivity",
    "ablation_channelwise",
    "ablation_clipping",
    "budget_audit",
)


def run_suite(
    config: Optional[ExperimentConfig] = None,
    table3_models: Sequence[str] = ("alexnet", "nin"),
    accuracy_drops: Sequence[float] = (0.01, 0.05),
    only: Optional[Sequence[str]] = None,
    output_dir: Optional[PathLike] = None,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run (a subset of) the full evaluation suite.

    ``only`` limits execution to the named experiments (see
    :data:`SUITE_EXPERIMENTS`).  With ``output_dir`` set, each result is
    exported as ``<output_dir>/<name>.json``.
    """
    config = config or ExperimentConfig()
    selected = list(only) if only else list(SUITE_EXPERIMENTS)
    unknown = set(selected) - set(SUITE_EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown suite experiments: {sorted(unknown)}")
    context = make_context(config)

    runners = {
        "fig1": lambda: run_fig1(context=context),
        "fig2": lambda: run_fig2(context=context),
        "fig3": lambda: run_fig3(context=context, with_corners=False),
        "table2": lambda: run_table2(context=context),
        "table3": lambda: run_table3(
            table3_models, accuracy_drops, config=config
        ),
        "fig4": lambda: run_fig4(config=config),
        "cost": lambda: run_cost_comparison(context=context),
        "ablation_xi": lambda: run_xi_ablation(context=context),
        "ablation_scheme": lambda: run_scheme_agreement(context=context),
        "ablation_stability": lambda: run_profile_stability(
            context=context, image_counts=(12, 24), point_counts=(8,)
        ),
        "ablation_negative_f": lambda: run_negative_fraction_ablation(
            context=context
        ),
        "ablation_additivity": lambda: run_additivity_check(context=context),
        "ablation_channelwise": lambda: run_channelwise_ablation(
            context=context
        ),
        "ablation_clipping": lambda: run_clipping_ablation(context=context),
        "budget_audit": lambda: run_budget_audit(context=context),
    }

    results: Dict[str, Any] = {}
    timings: Dict[str, float] = {}
    for name in selected:
        start = time.perf_counter()
        results[name] = runners[name]()
        timings[name] = time.perf_counter() - start
        if verbose:  # pragma: no cover - console nicety
            print(f"[suite] {name} done in {timings[name]:.1f}s")
        if output_dir is not None:
            export_json(results[name], Path(output_dir) / f"{name}.json")
    results["_timings"] = timings
    if output_dir is not None:
        export_json(timings, Path(output_dir) / "_timings.json")
    return results
