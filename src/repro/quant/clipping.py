"""Percentile-clipped integer ranges (saturating-format extension).

The paper sizes each layer's integer width from the absolute maximum
``max|X_K|`` so no value ever saturates.  Activation maxima are heavy-
tailed, so this spends integer bits on a handful of outliers.  The
standard alternative (used by essentially all later quantization
frameworks) is to cover only a high percentile of the distribution and
let the rare outliers saturate — trading a bounded, rare clipping error
for one or two integer bits on every value.

This module measures percentile ranges, derives the clipped integer
widths, and provides taps so the accuracy impact can be validated the
same way as every other allocation in this repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ..errors import QuantizationError
from ..nn.graph import Network, Tap
from ..nn.statistics import LayerStats
from .allocation import BitwidthAllocation, LayerAllocation
from .fixed_point import integer_bits_for_range


def measure_percentile_ranges(
    network: Network,
    images: np.ndarray,
    layer_names: List[str],
    percentile: float = 99.9,
    batch_size: int = 64,
) -> Dict[str, float]:
    """Per-layer ``percentile(|x|)`` of each named layer's input.

    Exact percentiles need all samples; to stay memory-bounded, the
    per-batch percentiles are aggregated by their maximum, which upper-
    bounds the global percentile (a conservative clip).
    """
    if not 50.0 < percentile <= 100.0:
        raise QuantizationError("percentile must be in (50, 100]")
    ranges: Dict[str, float] = {name: 0.0 for name in layer_names}

    def make_tap(name: str):
        def tap(x: np.ndarray) -> np.ndarray:
            value = float(np.percentile(np.abs(x), percentile))
            ranges[name] = max(ranges[name], value)
            return x

        return tap

    taps = {name: make_tap(name) for name in layer_names}
    for start in range(0, images.shape[0], batch_size):
        network.forward(images[start : start + batch_size], taps=taps)
    return ranges


@dataclass
class ClippedAllocation:
    """A per-layer allocation with percentile-clipped integer widths."""

    allocation: BitwidthAllocation
    percentile: float
    clipped_ranges: Dict[str, float]

    def bitwidths(self) -> Dict[str, int]:
        return self.allocation.bitwidths()

    def taps(self, network: Network) -> Dict[str, Tap]:
        """Saturating quantization taps at the clipped ranges."""
        return self.allocation.taps(network)


def clip_allocation(
    allocation: BitwidthAllocation,
    clipped_ranges: Mapping[str, float],
    percentile: float = 99.9,
) -> ClippedAllocation:
    """Shrink integer widths to cover only the percentile range.

    Each layer keeps its fraction width (the error budget, Eq. 7); the
    integer width is re-derived from the clipped range, never exceeding
    the original.  Values beyond the clipped range saturate — the
    validation pass decides whether that costs accuracy.
    """
    layers = []
    for layer in allocation:
        if layer.name in clipped_ranges:
            clipped_bits = integer_bits_for_range(
                float(clipped_ranges[layer.name])
            )
            integer_bits = min(layer.integer_bits, clipped_bits)
        else:
            integer_bits = layer.integer_bits
        layers.append(
            LayerAllocation(
                name=layer.name,
                integer_bits=integer_bits,
                fraction_bits=layer.fraction_bits,
            )
        )
    return ClippedAllocation(
        allocation=BitwidthAllocation(layers),
        percentile=percentile,
        clipped_ranges=dict(clipped_ranges),
    )


def clipping_saving_percent(
    original: BitwidthAllocation,
    clipped: ClippedAllocation,
    stats: Mapping[str, LayerStats],
) -> float:
    """Input-traffic saving (%) from percentile clipping alone."""
    rho = {name: float(stats[name].num_inputs) for name in original.names}
    before = original.weighted_bits(rho)
    after = clipped.allocation.weighted_bits(rho)
    if before <= 0:
        raise QuantizationError("original allocation has no weighted bits")
    return 100.0 * (before - after) / before
