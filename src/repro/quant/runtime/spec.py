"""Execution settings for the integer low-bit runtime.

:class:`RuntimeSpec` is a cache-relevant configuration dataclass: its
fields are classified in :data:`repro.cache.keys.KEY_FIELD_REGISTRY`
(the determinism analyzer cross-checks the table against this
definition).  ``weight_bits`` changes the packed-weight bits and is
keyed; ``backend`` and ``pack_activations`` are covered by the
runtime's bit-identity contract (every backend computes the exact same
integer accumulators, see ``docs/quantized-execution.md``) and are
excluded from keys by that contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import QuantizationError

#: Integer-GEMM backends the runtime can execute with.  All three are
#: bit-identical (integer arithmetic is exact; the fast backend routes
#: through float64 BLAS only inside a proven-exact operand range).
RUNTIME_BACKENDS = ("reference", "fast", "numba")


@dataclass(frozen=True)
class RuntimeSpec:
    """Knobs of the quantized execution runtime."""

    #: Total fixed-point word length for packed weights (integer bits
    #: come from each layer's measured ``max|w|``).  16 keeps operands
    #: in int16 and makes weight rounding negligible next to the
    #: optimized activation formats.
    weight_bits: int = 16
    #: Integer-GEMM backend: ``reference`` (int64 numpy matmul),
    #: ``fast`` (float64 BLAS inside the exactness envelope), or
    #: ``numba`` (compiled int32-accumulator kernels; requires numba).
    backend: str = "fast"
    #: Move analyzed-layer activations through their bit-packed buffers
    #: on the hot path (real packed bytes are counted as measured
    #: traffic).  Off skips the pack/unpack round-trip and counts the
    #: same bits analytically; results are bit-identical either way.
    pack_activations: bool = True

    def __post_init__(self) -> None:
        if not 2 <= self.weight_bits <= 16:
            raise QuantizationError(
                f"weight_bits must be in [2, 16]; got {self.weight_bits}"
            )
        if self.backend not in RUNTIME_BACKENDS:
            raise QuantizationError(
                f"backend must be one of {RUNTIME_BACKENDS}; "
                f"got {self.backend!r}"
            )
