"""Quantized network execution: run a ``BitwidthAllocation`` for real.

Everywhere else in the repository, low bitwidths are *simulated*: the
float network runs with rounding (or noise) taps on analyzed-layer
inputs.  :class:`QuantizedNetwork` closes the loop — it executes the
optimized per-layer ``(I, F)`` formats end to end:

* **weights** are quantized once into bit-packed per-layer buffers
  (:class:`~repro.quant.runtime.packing.PackedTensor`), optionally
  cached content-addressed like clean activations are;
* **activations** are quantized to each analyzed layer's format at the
  layer boundary — and, with ``pack_activations``, physically moved
  through their packed buffers so the byte counts reported as measured
  traffic are bytes that really existed;
* **conv/dense layers** execute as integer GEMMs over the codes with a
  per-layer requantization shift ``F_x + F_w`` back to float64
  (:mod:`~repro.quant.runtime.kernels`); every other layer (ReLU,
  pooling, LRN, ...) runs the stock float path on the dequantized
  values, exactly as a Stripes-style accelerator keeps its
  non-dot-product operations in full precision.

Bit-identity contract: the integer path is deterministic and exact, so
results are bit-identical across backends (``reference``/``fast``/
``numba``), across ``forward`` vs :meth:`forward_from_many` batching,
and across engine ``--jobs`` settings (which never touch this path).
For *unquantized* GEMM layers inside a batched call, the batch is
sliced back to per-trial GEMM shapes — the same shape-stability trick
as :mod:`repro.engine.kernels` — so batching stays bitwise faithful
even for layers the allocation does not cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ...config import MAX_BITWIDTH, MIN_BITWIDTH
from ...errors import QuantizationError
from ...nn.graph import Network
from ...nn.layer import Layer
from ...nn.layers.conv import Conv2D
from ...nn.layers.dense import Dense
from ...nn.tensor import extract_windows, flatten_spatial, im2col
from ..allocation import BitwidthAllocation
from ..fixed_point import FixedPointFormat, integer_bits_for_range
from .kernels import accumulation_bound, integer_gemm, requantize
from .packing import (
    PackedTensor,
    codes_to_values,
    pack_codes,
    quantize_to_codes,
    unpack_codes,
)
from .spec import RuntimeSpec


@dataclass(frozen=True)
class QuantizedLayerPlan:
    """Precompiled integer-execution plan for one analyzed layer."""

    name: str
    #: Activation (input) format — the allocation's decision.
    activation_format: FixedPointFormat
    #: Weight format (integer bits from ``max|w|``).
    weight_format: FixedPointFormat
    #: Bit-packed weight blob (the bytes a weight read would move).
    packed_weight: PackedTensor
    #: Unpacked weight codes, kept hot for the GEMM (int64).
    weight_codes: np.ndarray
    #: Bias codes at accumulator scale ``2**-shift`` (int64), or None.
    bias_codes: Optional[np.ndarray]
    #: Requantization shift ``F_x + F_w``.
    shift: int
    #: Worst-case accumulator magnitude (overflow guard + backend gate).
    bound: int


def _runtime_format(
    integer_bits: int, fraction_bits: int
) -> FixedPointFormat:
    """The storable format for an allocation entry.

    Mirrors :attr:`LayerAllocation.fmt` (fraction clamped up so the
    word is at least 1 bit) and additionally clamps the *total* width
    to :data:`MAX_BITWIDTH` — the same ceiling the allocation's cost
    accounting applies — so every stored word is packable.
    """
    fraction = max(fraction_bits, MIN_BITWIDTH - integer_bits)
    fraction = min(fraction, MAX_BITWIDTH - integer_bits)
    return FixedPointFormat(integer_bits, fraction)


def _weight_format(weight: np.ndarray, weight_bits: int) -> FixedPointFormat:
    """Fixed-point format for a weight tensor at ``weight_bits`` total."""
    max_abs = float(np.max(np.abs(weight))) if weight.size else 0.0
    integer = integer_bits_for_range(max_abs)
    return FixedPointFormat(integer, weight_bits - integer)


def _dot_depth(layer: Layer) -> int:
    """Dot-product depth (K) of a GEMM-backed layer."""
    if isinstance(layer, Conv2D):
        return int(layer.weight.shape[1]) * layer.kernel * layer.kernel
    if isinstance(layer, Dense):
        return layer.in_features
    raise QuantizationError(
        f"layer {layer.name!r} ({type(layer).__name__}) has no integer "
        "execution path; only Conv2D and Dense layers can be quantized"
    )


def build_layer_plan(
    layer: Layer,
    integer_bits: int,
    fraction_bits: int,
    spec: RuntimeSpec,
    packed_weight: Optional[PackedTensor] = None,
) -> QuantizedLayerPlan:
    """Compile one analyzed layer's integer-execution plan.

    ``packed_weight`` short-circuits weight quantization with a blob
    restored from the content-addressed cache; when absent, weights
    are quantized and packed here.
    """
    act_fmt = _runtime_format(integer_bits, fraction_bits)
    weight = getattr(layer, "weight", None)
    if weight is None:
        raise QuantizationError(
            f"layer {layer.name!r} has no weights to quantize"
        )
    w_fmt = _weight_format(weight, spec.weight_bits)
    if packed_weight is None:
        w_codes = quantize_to_codes(weight, w_fmt)
        packed_weight = PackedTensor.from_codes(
            w_codes, spec.weight_bits, w_fmt.fraction_bits
        )
    else:
        if (
            packed_weight.bits != spec.weight_bits
            or packed_weight.fraction_bits != w_fmt.fraction_bits
            or packed_weight.shape != tuple(weight.shape)
        ):
            raise QuantizationError(
                f"cached packed weights for {layer.name!r} do not match "
                "the expected format/shape"
            )
        w_codes = packed_weight.codes()
    shift = act_fmt.fraction_bits + w_fmt.fraction_bits
    bias = getattr(layer, "bias", None)
    bias_codes: Optional[np.ndarray] = None
    bias_peak = 0
    if bias is not None:
        bias_codes = np.round(
            np.ldexp(np.asarray(bias, dtype=np.float64), shift)
        ).astype(np.int64)
        bias_peak = int(np.max(np.abs(bias_codes))) if bias_codes.size else 0
    bound = (
        accumulation_bound(
            _dot_depth(layer), act_fmt.total_bits, spec.weight_bits
        )
        + bias_peak
    )
    return QuantizedLayerPlan(
        name=layer.name,
        activation_format=act_fmt,
        weight_format=w_fmt,
        packed_weight=packed_weight,
        weight_codes=w_codes,
        bias_codes=bias_codes,
        shift=shift,
        bound=bound,
    )


class QuantizedNetwork:
    """A network compiled to execute one allocation with integer GEMMs."""

    def __init__(
        self,
        network: Network,
        allocation: BitwidthAllocation,
        spec: Optional[RuntimeSpec] = None,
        packed_weights: Optional[Dict[str, PackedTensor]] = None,
    ):
        self.network = network
        self.allocation = allocation
        self.spec = spec or RuntimeSpec()
        for name in allocation.names:
            if name not in network:
                raise QuantizationError(
                    f"allocation targets layer {name!r} absent from "
                    f"network {network.name!r}"
                )
            if not network[name].analyzed:
                raise QuantizationError(
                    f"layer {name!r} is not a dot-product layer; it has "
                    "no integer execution path"
                )
        self._plans: Dict[str, QuantizedLayerPlan] = {}
        for entry in allocation:
            cached = (packed_weights or {}).get(entry.name)
            self._plans[entry.name] = build_layer_plan(
                network[entry.name],
                entry.integer_bits,
                entry.fraction_bits,
                self.spec,
                packed_weight=cached,
            )
        self._traffic_bits: Dict[str, int] = {
            name: 0 for name in self._plans
        }
        self._images_seen = 0

    # ------------------------------------------------------------------
    # Introspection / accounting
    # ------------------------------------------------------------------
    @property
    def plans(self) -> Dict[str, QuantizedLayerPlan]:
        return dict(self._plans)

    @property
    def images_seen(self) -> int:
        """Images pushed through :meth:`forward` since the last reset."""
        return self._images_seen

    def packed_weight_nbytes(self) -> int:
        """Total bytes of all bit-packed weight blobs."""
        return sum(p.packed_weight.nbytes for p in self._plans.values())

    def reset_traffic(self) -> None:
        """Zero the measured activation-traffic counters."""
        self._traffic_bits = {name: 0 for name in self._plans}
        self._images_seen = 0

    def measured_input_bits(self) -> Dict[str, float]:
        """Measured per-layer activation-read bits per image.

        With ``pack_activations`` these are the sizes of packed buffers
        that actually existed on the hot path (including byte-boundary
        padding per batch); otherwise they are exact code-bit counts.
        Comparable directly to
        :func:`repro.hardware.bandwidth.layer_traffic_bits`.
        """
        if self._images_seen == 0:
            raise QuantizationError(
                "no forward passes recorded; run forward() first"
            )
        return {
            name: bits / self._images_seen
            for name, bits in self._traffic_bits.items()
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized forward pass; returns float64 logits."""
        self._images_seen += int(np.asarray(x).shape[0])
        return self.network.forward(x, forward_fn=self._forward_fn(1))

    def forward_from_many(
        self, batches: Sequence[np.ndarray]
    ) -> np.ndarray:
        """R same-shape batches in one stacked pass (engine-style).

        Stacks the batches along the batch axis and executes one
        forward, slicing unquantized GEMM layers back to per-batch
        shapes so the result is bitwise identical to calling
        :meth:`forward` once per batch.  Returns shape ``(R, B, ...)``.
        """
        if not batches:
            raise QuantizationError("forward_from_many needs >= 1 batch")
        first = np.asarray(batches[0])
        for batch in batches[1:]:
            if np.asarray(batch).shape != first.shape:
                raise QuantizationError(
                    "forward_from_many requires same-shape batches"
                )
        repeats = len(batches)
        stacked = np.concatenate([np.asarray(b) for b in batches], axis=0)
        self._images_seen += int(stacked.shape[0])
        out = self.network.forward(
            stacked, forward_fn=self._forward_fn(repeats)
        )
        return out.reshape((repeats, first.shape[0]) + out.shape[1:])

    def predict(
        self, images: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Predicted class per image under quantized execution."""
        outputs: List[np.ndarray] = []
        for start in range(0, images.shape[0], batch_size):
            logits = self.forward(images[start : start + batch_size])
            outputs.append(
                np.argmax(logits.reshape(logits.shape[0], -1), axis=1)
            )
        return np.concatenate(outputs)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _forward_fn(
        self, trial_groups: int
    ) -> Callable[[Layer, Sequence[np.ndarray]], np.ndarray]:
        def forward(
            layer: Layer, arrays: Sequence[np.ndarray]
        ) -> np.ndarray:
            plan = self._plans.get(layer.name)
            if plan is None:
                return self._float_forward(layer, arrays, trial_groups)
            return self._integer_forward(layer, plan, arrays[0])

        return forward

    def _float_forward(
        self,
        layer: Layer,
        arrays: Sequence[np.ndarray],
        trial_groups: int,
    ) -> np.ndarray:
        """Stock float path, sliced per trial group for GEMM layers.

        BLAS picks kernels (and accumulation orders) by operand shape,
        so an unquantized Conv2D/Dense inside a stacked batch must run
        per-group GEMMs to reproduce the unstacked bits — the same
        rule :mod:`repro.engine.kernels` enforces for replay stacking.
        """
        if trial_groups > 1 and isinstance(layer, (Conv2D, Dense)):
            x = arrays[0]
            n = x.shape[0]
            if n % trial_groups == 0:
                per = n // trial_groups
                return np.concatenate(
                    [
                        layer.forward([x[t * per : (t + 1) * per]])
                        for t in range(trial_groups)
                    ],
                    axis=0,
                )
        return layer.forward(arrays)

    def _quantize_input(
        self, plan: QuantizedLayerPlan, x: np.ndarray
    ) -> np.ndarray:
        """Input codes for a layer, moved through the packed buffer."""
        fmt = plan.activation_format
        codes = quantize_to_codes(x, fmt)
        bits = fmt.total_bits
        if self.spec.pack_activations:
            packed = pack_codes(codes, bits)
            self._traffic_bits[plan.name] += int(packed.nbytes) * 8
            codes = unpack_codes(packed, bits, codes.size).reshape(
                codes.shape
            )
        else:
            self._traffic_bits[plan.name] += codes.size * bits
        return codes

    def _integer_forward(
        self, layer: Layer, plan: QuantizedLayerPlan, x: np.ndarray
    ) -> np.ndarray:
        codes = self._quantize_input(plan, x)
        if isinstance(layer, Conv2D):
            acc = self._int_conv(layer, plan, codes)
        else:
            acc = self._int_dense(layer, plan, codes)
        return requantize(acc, plan.shift)

    def _int_dense(
        self, layer: Layer, plan: QuantizedLayerPlan, codes: np.ndarray
    ) -> np.ndarray:
        assert isinstance(layer, Dense)
        flat = flatten_spatial(codes)
        acc = integer_gemm(
            flat, plan.weight_codes.T, self.spec.backend, plan.bound
        )
        if plan.bias_codes is not None:
            acc = acc + plan.bias_codes
        return acc

    def _int_conv(
        self, layer: Layer, plan: QuantizedLayerPlan, codes: np.ndarray
    ) -> np.ndarray:
        assert isinstance(layer, Conv2D)
        n = codes.shape[0]
        out_c, out_h, out_w = layer.output_shape
        positions = out_h * out_w
        w_codes = plan.weight_codes
        if layer.groups == codes.shape[1] and w_codes.shape[1] == 1:
            # Depthwise: per-channel window dot products.  Integer
            # einsum is exact, so it is its own fast path.
            windows = extract_windows(
                codes, layer.kernel, layer.stride, layer.padding
            )
            acc = np.einsum(
                "nchwij,cij->nchw",
                windows.astype(np.int64),
                w_codes[:, 0, :, :],
            )
        elif layer.groups == 1:
            cols = im2col(codes, layer.kernel, layer.stride, layer.padding)
            fused = cols.transpose(1, 0, 2).reshape(
                cols.shape[1], n * positions
            )
            flat = integer_gemm(
                w_codes.reshape(out_c, -1),
                fused,
                self.spec.backend,
                plan.bound,
            )
            acc = np.ascontiguousarray(
                flat.reshape(out_c, n, positions).transpose(1, 0, 2)
            ).reshape(n, out_c, out_h, out_w)
        else:
            in_per_group = w_codes.shape[1]
            out_per_group = out_c // layer.groups
            acc = np.empty(
                (n, out_c, out_h, out_w), dtype=np.int64
            )
            for g in range(layer.groups):
                x_g = codes[:, g * in_per_group : (g + 1) * in_per_group]
                cols = im2col(
                    x_g, layer.kernel, layer.stride, layer.padding
                )
                fused = cols.transpose(1, 0, 2).reshape(
                    cols.shape[1], n * positions
                )
                flat = integer_gemm(
                    w_codes[
                        g * out_per_group : (g + 1) * out_per_group
                    ].reshape(out_per_group, -1),
                    fused,
                    self.spec.backend,
                    plan.bound,
                )
                acc[:, g * out_per_group : (g + 1) * out_per_group] = (
                    np.ascontiguousarray(
                        flat.reshape(
                            out_per_group, n, positions
                        ).transpose(1, 0, 2)
                    ).reshape(n, out_per_group, out_h, out_w)
                )
            acc = acc.reshape(n, out_c, out_h, out_w)
        if plan.bias_codes is not None:
            acc = acc + plan.bias_codes[None, :, None, None]
        return acc.reshape(n, out_c, out_h, out_w)

    def dequantized_weight(self, name: str) -> np.ndarray:
        """The float64 values the packed weights represent (for tests)."""
        plan = self._plans[name]
        return codes_to_values(plan.weight_codes, plan.weight_format)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantizedNetwork({self.network.name!r}, "
            f"layers={len(self._plans)}, backend={self.spec.backend!r})"
        )
