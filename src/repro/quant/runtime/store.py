"""Content-addressed persistence for bit-packed weight blobs.

Packed weights are pure functions of the network's parameters, the
allocation's per-layer formats, and the runtime's ``weight_bits`` — so
they are cached exactly like clean activations: a single
:func:`~repro.cache.keys.make_key` key over those inputs, one mmap-able
array entry holding every layer's packed payload.  ``backend`` and
``pack_activations`` stay out of the key per the registry contract
(:data:`~repro.cache.keys.KEY_FIELD_REGISTRY`): neither changes a
stored bit.

Each layer contributes two arrays to the entry: ``<layer>:data`` (the
packed uint8 payload) and ``<layer>:meta`` (an int64 vector
``[bits, fraction_bits, *shape]`` — the fields a
:class:`~repro.quant.runtime.packing.PackedTensor` needs beyond its
payload, stored as an array because the store's read path returns
arrays only).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ...cache.keys import make_key, network_digest
from ...cache.store import ResultCache
from ...nn.graph import Network
from ..allocation import BitwidthAllocation
from .network import QuantizedNetwork
from .packing import PackedTensor
from .spec import RuntimeSpec

#: Store namespace for packed-weight entries.
PACKED_WEIGHTS_NAMESPACE = "packed-weights"


def packed_weights_key(
    network: Network, allocation: BitwidthAllocation, spec: RuntimeSpec
) -> str:
    """Cache key for a network's packed weights under one allocation."""
    return make_key(
        {
            "kind": "packed-weights",
            "network": network_digest(network),
            "allocation": {
                a.name: [a.integer_bits, a.fraction_bits]
                for a in allocation
            },
            "weight_bits": spec.weight_bits,
        }
    )


def store_packed_weights(
    cache: ResultCache, key: str, packed: Mapping[str, PackedTensor]
) -> None:
    """Persist per-layer packed weight blobs under ``key``."""
    arrays: Dict[str, np.ndarray] = {}
    for name, tensor in packed.items():
        arrays[f"{name}:data"] = tensor.data
        arrays[f"{name}:meta"] = np.array(
            [tensor.bits, tensor.fraction_bits, *tensor.shape],
            dtype=np.int64,
        )
    cache.put_arrays(PACKED_WEIGHTS_NAMESPACE, key, arrays)


def load_packed_weights(
    cache: ResultCache, key: str, names: Sequence[str]
) -> Optional[Dict[str, PackedTensor]]:
    """Restore packed weights for ``names``, or None on any miss.

    A hit must cover *every* requested layer; anything else (including
    a stale entry shape) is treated as a miss so the caller re-packs.
    """
    entry = cache.get_arrays(PACKED_WEIGHTS_NAMESPACE, key)
    if entry is None:
        return None
    packed: Dict[str, PackedTensor] = {}
    for name in names:
        data = entry.get(f"{name}:data")
        meta = entry.get(f"{name}:meta")
        if data is None or meta is None or meta.ndim != 1 or meta.size < 2:
            return None
        packed[name] = PackedTensor(
            data=data,
            bits=int(meta[0]),
            shape=tuple(int(s) for s in meta[2:]),
            fraction_bits=int(meta[1]),
        )
    return packed


def build_quantized_network(
    network: Network,
    allocation: BitwidthAllocation,
    spec: Optional[RuntimeSpec] = None,
    cache: Optional[ResultCache] = None,
) -> QuantizedNetwork:
    """Compile a :class:`QuantizedNetwork`, round-tripping the cache.

    With a cache, packed weight blobs are restored when present and
    stored after the first compile — the same lifecycle as clean
    activations in the pipeline.
    """
    spec = spec or RuntimeSpec()
    restored: Optional[Dict[str, PackedTensor]] = None
    key = ""
    if cache is not None:
        key = packed_weights_key(network, allocation, spec)
        restored = load_packed_weights(cache, key, allocation.names)
    quantized = QuantizedNetwork(
        network, allocation, spec, packed_weights=restored
    )
    if cache is not None and restored is None:
        store_packed_weights(
            cache,
            key,
            {
                name: plan.packed_weight
                for name, plan in quantized.plans.items()
            },
        )
    return quantized
