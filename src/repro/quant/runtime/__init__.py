"""Integer low-bit execution runtime (see ``docs/quantized-execution.md``).

Everything needed to *run* a :class:`~repro.quant.BitwidthAllocation`
for real: bit-packed weights, integer GEMM kernels with a per-layer
requantization shift, a :class:`QuantizedNetwork` wrapper over the
float graph, and content-addressed persistence for the packed blobs.
"""

from .kernels import (
    FLOAT64_EXACT_BOUND,
    accumulation_bound,
    check_accumulator,
    integer_gemm,
    numba_available,
    requantize,
)
from .network import (
    QuantizedLayerPlan,
    QuantizedNetwork,
    build_layer_plan,
)
from .packing import (
    MAX_PACK_BITS,
    PackedTensor,
    code_bounds,
    codes_to_values,
    pack_codes,
    packed_nbytes,
    quantize_to_codes,
    unpack_codes,
)
from .spec import RUNTIME_BACKENDS, RuntimeSpec
from .store import (
    PACKED_WEIGHTS_NAMESPACE,
    build_quantized_network,
    load_packed_weights,
    packed_weights_key,
    store_packed_weights,
)

__all__ = [
    "FLOAT64_EXACT_BOUND",
    "MAX_PACK_BITS",
    "PACKED_WEIGHTS_NAMESPACE",
    "PackedTensor",
    "QuantizedLayerPlan",
    "QuantizedNetwork",
    "RUNTIME_BACKENDS",
    "RuntimeSpec",
    "accumulation_bound",
    "build_layer_plan",
    "build_quantized_network",
    "check_accumulator",
    "code_bounds",
    "codes_to_values",
    "integer_gemm",
    "load_packed_weights",
    "numba_available",
    "pack_codes",
    "packed_nbytes",
    "packed_weights_key",
    "quantize_to_codes",
    "requantize",
    "store_packed_weights",
    "unpack_codes",
]
