"""Two's-complement bit-packing for fixed-point tensors.

A value quantized to an ``I.F`` :class:`FixedPointFormat` is an integer
*code* ``q = clip(round(x * 2**F), -2**(B-1), 2**(B-1)-1)`` with
``B = I + F`` total bits; the represented value is ``q * 2**-F``.
This module converts float tensors to codes and packs the codes into a
dense little-endian bitstream of exactly ``B`` bits per element — the
storage format whose byte count *is* the paper's bandwidth claim.

Exactness notes (the runtime's bit-identity contract leans on these):

* ``quantize_to_codes`` followed by ``codes_to_values`` reproduces
  :meth:`FixedPointFormat.quantize` bit for bit: scaling by a power of
  two is exact in float64 and the clip bounds are the same values.
* ``pack_codes`` / ``unpack_codes`` round-trip every in-range code for
  any width 1..32 (two's complement with sign extension on unpack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ...errors import QuantizationError
from ..fixed_point import FixedPointFormat

#: Widest packable code (int64 codes, uint64 bit gymnastics).
MAX_PACK_BITS = 32


def code_bounds(bits: int) -> Tuple[int, int]:
    """(min, max) signed code representable in ``bits`` bits."""
    if not 1 <= bits <= MAX_PACK_BITS:
        raise QuantizationError(
            f"packable width must be in [1, {MAX_PACK_BITS}]; got {bits}"
        )
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def quantize_to_codes(x: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Integer codes of ``x`` in ``fmt`` (int64, saturated).

    ``codes * fmt.step`` equals ``fmt.quantize(x)`` exactly: both round
    ``x * 2**F`` to the nearest integer and saturate at the same
    bounds, and the final power-of-two scaling is exact in float64.
    """
    lo, hi = code_bounds(fmt.total_bits)
    scaled = np.ldexp(np.asarray(x, dtype=np.float64), fmt.fraction_bits)
    return np.clip(np.round(scaled), lo, hi).astype(np.int64)


def codes_to_values(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Represented float64 values of integer codes (exact scaling)."""
    return np.ldexp(codes.astype(np.float64), -fmt.fraction_bits)


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack signed codes into a little-endian ``bits``-per-element stream.

    Codes must already fit in ``bits`` bits (as produced by
    :func:`quantize_to_codes`); out-of-range codes raise rather than
    silently wrapping.
    """
    lo, hi = code_bounds(bits)
    flat = np.ascontiguousarray(codes, dtype=np.int64).reshape(-1)
    if flat.size and (int(flat.min()) < lo or int(flat.max()) > hi):
        raise QuantizationError(
            f"codes outside the {bits}-bit range [{lo}, {hi}] cannot be "
            "packed losslessly"
        )
    unsigned = (flat & ((1 << bits) - 1)).astype(np.uint64)
    lanes = np.arange(bits, dtype=np.uint64)
    bit_matrix = ((unsigned[:, None] >> lanes) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.reshape(-1), bitorder="little")


def unpack_codes(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Recover ``count`` signed codes from a packed stream (int64)."""
    code_bounds(bits)  # validates the width
    total = count * bits
    if packed.size * 8 < total:
        raise QuantizationError(
            f"packed stream holds {packed.size * 8} bits; "
            f"{total} required for {count} x {bits}-bit codes"
        )
    lanes = np.unpackbits(
        np.ascontiguousarray(packed, dtype=np.uint8),
        count=total,
        bitorder="little",
    ).reshape(count, bits)
    weights = np.uint64(1) << np.arange(bits, dtype=np.uint64)
    unsigned = (lanes.astype(np.uint64) * weights).sum(
        axis=1, dtype=np.uint64
    ).astype(np.int64)
    sign_bit = np.int64(1 << (bits - 1))
    wrap = np.int64(1 << bits)  # bits <= 32, so this fits comfortably
    return np.where(unsigned & sign_bit, unsigned - wrap, unsigned)


@dataclass(frozen=True)
class PackedTensor:
    """A bit-packed fixed-point tensor (the on-wire/-disk weight form)."""

    #: Little-endian packed payload (uint8).
    data: np.ndarray
    #: Bits per element.
    bits: int
    #: Logical (unpacked) shape.
    shape: Tuple[int, ...]
    #: Fraction bits of the format the codes were quantized with.
    fraction_bits: int

    @property
    def count(self) -> int:
        """Number of logical elements."""
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Packed payload size — the bytes that actually move."""
        return int(self.data.nbytes)

    @property
    def packed_bits(self) -> int:
        """Exact payload bits before byte-boundary padding."""
        return self.count * self.bits

    @classmethod
    def from_codes(
        cls, codes: np.ndarray, bits: int, fraction_bits: int
    ) -> "PackedTensor":
        return cls(
            data=pack_codes(codes, bits),
            bits=bits,
            shape=tuple(codes.shape),
            fraction_bits=fraction_bits,
        )

    def codes(self) -> np.ndarray:
        """Unpack back to signed int64 codes in the logical shape."""
        return unpack_codes(self.data, self.bits, self.count).reshape(
            self.shape
        )

    def values(self) -> np.ndarray:
        """Represented float64 values (exact power-of-two scaling)."""
        return np.ldexp(self.codes().astype(np.float64), -self.fraction_bits)


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes a ``count``-element ``bits``-wide packed buffer occupies."""
    code_bounds(bits)
    return (count * bits + 7) // 8
