"""Integer GEMM kernels for the low-bit runtime.

Every analyzed layer executes as one (or a few) integer matrix
products over quantized codes: activations enter as ``B_x``-bit codes,
weights as ``B_w``-bit codes, and the accumulator holds the *exact*
integer ``sum_i qw_i * qx_i`` — the value the fixed-point hardware the
paper targets would compute, at scale ``2**-(F_x + F_w)``.

Three backends, all bit-identical (integer arithmetic has no rounding,
so any summation order gives the same accumulator):

``reference``
    Plain ``np.matmul`` over int64 operands.  Slow but unarguable; the
    other backends are tested against it element-for-element.
``fast``
    Routes the product through float64 BLAS.  Exact — not approximately
    equal — whenever every partial sum stays below ``2**53``: int16-ish
    codes have products below ``2**30``, and the accumulation bound
    ``K * max|qw| * max|qx|`` is checked *statically* per layer before
    the backend is allowed (fall back to int64 otherwise).  Integers
    below ``2**53`` are represented exactly in float64 and their sums
    are computed exactly, so BLAS's reduction-order freedom cannot
    change a single bit.
``numba``
    Compiled int32-accumulator kernels (int16 operands), the layout an
    edge DSP would run.  Optional: the import is deferred and gated, so
    environments without numba simply cannot select it.

Overflow is a hard error, never silent wrap: each layer's worst-case
accumulation bound is computed at plan-build time and checked against
the backend's accumulator width.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ...errors import QuantizationError

#: Largest integer float64 represents exactly; the fast backend's
#: accumulation bound must stay strictly below it.
FLOAT64_EXACT_BOUND = 1 << 53

#: int64 accumulation bound (reference backend).
INT64_BOUND = 1 << 62

#: int32 accumulation bound (numba backend's accumulator width).
INT32_BOUND = 1 << 31

_NUMBA_GEMM: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None


def accumulation_bound(
    depth: int, activation_bits: int, weight_bits: int
) -> int:
    """Worst-case ``|sum qw*qx|`` for a ``depth``-deep dot product."""
    if depth < 1:
        raise QuantizationError(f"dot-product depth must be >= 1; got {depth}")
    return depth * (1 << (activation_bits - 1)) * (1 << (weight_bits - 1))


def check_accumulator(bound: int, backend: str) -> None:
    """Reject plans whose accumulators could overflow the backend."""
    limit = {
        "reference": INT64_BOUND,
        "fast": INT64_BOUND,
        "numba": INT32_BOUND,
    }.get(backend)
    if limit is None:
        raise QuantizationError(f"unknown integer-GEMM backend {backend!r}")
    if bound >= limit:
        raise QuantizationError(
            f"accumulation bound {bound} overflows the {backend!r} "
            f"backend's accumulator (limit {limit}); use wider "
            "accumulators or narrower formats"
        )


def numba_available() -> bool:
    """True when the optional compiled backend can be used."""
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _numba_gemm() -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Lazily compile the int16 x int16 -> int32 accumulator kernel."""
    global _NUMBA_GEMM
    if _NUMBA_GEMM is None:  # pragma: no cover - needs numba installed
        try:
            from numba import njit
        except ImportError as exc:
            raise QuantizationError(
                'backend "numba" requested but numba is not installed; '
                'use backend "fast" or "reference"'
            ) from exc

        @njit(cache=True)
        def gemm_i16(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            m, k = a.shape
            k2, n = b.shape
            out = np.zeros((m, n), dtype=np.int32)
            for i in range(m):
                for p in range(k):
                    a_ip = np.int32(a[i, p])
                    for j in range(n):
                        out[i, j] += a_ip * np.int32(b[p, j])
            return out

        _NUMBA_GEMM = gemm_i16
    return _NUMBA_GEMM


def integer_gemm(
    a: np.ndarray, b: np.ndarray, backend: str, bound: int
) -> np.ndarray:
    """Exact integer product ``a @ b`` (int64 result) via ``backend``.

    ``a`` and ``b`` are integer code matrices (any integer dtype);
    ``bound`` is the precomputed worst-case accumulator magnitude used
    to pick/validate the execution path.
    """
    check_accumulator(bound, backend)
    if backend == "fast" and bound < FLOAT64_EXACT_BOUND:
        # Every operand and every partial sum is an integer below
        # 2**53: float64 represents and adds them exactly, so BLAS
        # gives the same bits as the int64 loop, only much faster.
        out = np.matmul(a.astype(np.float64), b.astype(np.float64))
        return np.rint(out).astype(np.int64)
    if backend == "numba":  # pragma: no cover - needs numba installed
        gemm = _numba_gemm()
        out32 = gemm(
            np.ascontiguousarray(a, dtype=np.int16),
            np.ascontiguousarray(b, dtype=np.int16),
        )
        return out32.astype(np.int64)
    return np.matmul(a.astype(np.int64), b.astype(np.int64))


def requantize(acc: np.ndarray, shift: int) -> np.ndarray:
    """Accumulator -> float64 activations: exact scale by ``2**-shift``.

    ``shift = F_x + F_w`` is the layer's requantization shift.  The
    conversion is exact whenever the accumulator magnitude stays below
    ``2**53`` (true for every model-zoo allocation); past that the
    int64 -> float64 cast rounds to nearest — identically for every
    backend, so cross-backend bit-identity is unaffected.
    """
    return np.ldexp(acc.astype(np.float64), -shift)
