"""Serialize bitwidth allocations to/from JSON.

An allocation is the tool's deliverable — the per-layer formats a
hardware team consumes.  The JSON schema keeps integer and fraction
widths separately (the word length alone cannot reconstruct the format)
plus optional provenance (objective, sigma, accuracy evidence).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import QuantizationError
from .allocation import BitwidthAllocation, LayerAllocation

PathLike = Union[str, Path]

#: Bumped when the stored schema changes incompatibly.
SCHEMA_VERSION = 1


def allocation_to_dict(
    allocation: BitwidthAllocation,
    provenance: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """JSON-ready representation of an allocation."""
    return {
        "schema_version": SCHEMA_VERSION,
        "layers": [
            {
                "name": layer.name,
                "integer_bits": layer.integer_bits,
                "fraction_bits": layer.fraction_bits,
                "total_bits": layer.total_bits,
            }
            for layer in allocation
        ],
        "provenance": dict(provenance or {}),
    }


def allocation_from_dict(data: Dict[str, Any]) -> BitwidthAllocation:
    """Rebuild an allocation from its dict form (total_bits is derived)."""
    if data.get("schema_version") != SCHEMA_VERSION:
        raise QuantizationError(
            f"unsupported allocation schema {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    layers = []
    for entry in data.get("layers", []):
        try:
            layers.append(
                LayerAllocation(
                    name=entry["name"],
                    integer_bits=int(entry["integer_bits"]),
                    fraction_bits=int(entry["fraction_bits"]),
                )
            )
        except KeyError as missing:
            raise QuantizationError(
                f"allocation entry missing field {missing}"
            ) from None
    return BitwidthAllocation(layers)


def save_allocation(
    allocation: BitwidthAllocation,
    path: PathLike,
    provenance: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write an allocation (plus provenance) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            allocation_to_dict(allocation, provenance), handle, indent=2
        )
    return path


def load_allocation(path: PathLike) -> BitwidthAllocation:
    """Read an allocation previously written by :func:`save_allocation`."""
    path = Path(path)
    if not path.exists():
        raise QuantizationError(f"no allocation file at {path}")
    with open(path) as handle:
        return allocation_from_dict(json.load(handle))
