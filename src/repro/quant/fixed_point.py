"""Fixed-point ``I.F`` formats and uniform quantization (paper Sec. II-A).

A value is represented with ``I`` integer bits (including sign) and
``F`` fraction bits.  With correct rounding, the worst-case rounding
error is ``Delta = 2**-(F+1)`` — the paper's quantization-error
boundary.  Two paper-specific behaviours are supported:

* **Negative fraction bits.**  When the tolerated ``Delta`` exceeds 1,
  low-order *integer* bits may be dropped ("saving the integer bitwidth
  when Delta is greater than 1"), which corresponds to ``F < 0`` with an
  implicit scaling shift; the total word length is still ``I + F``.
* **Saturation.**  The integer width is chosen from the measured value
  range, so in-range values never overflow; out-of-range values clamp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``integer_bits`` + ``fraction_bits``.

    ``integer_bits`` includes the sign bit.  ``fraction_bits`` may be
    negative (implicit power-of-two scaling).
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise QuantizationError(
                f"integer_bits must be >= 1 (sign bit); got {self.integer_bits}"
            )
        if self.total_bits < 1:
            raise QuantizationError(
                f"format {self.integer_bits}.{self.fraction_bits} has "
                f"non-positive total width {self.total_bits}"
            )

    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Stored word length ``I + F`` (F may be negative)."""
        return self.integer_bits + self.fraction_bits

    @property
    def step(self) -> float:
        """Quantization step size ``2**-F``."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def delta(self) -> float:
        """Worst-case rounding error ``2**-(F+1)`` (half a step)."""
        return 2.0 ** (-(self.fraction_bits + 1))

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0 ** (self.integer_bits - 1) - self.step

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2.0 ** (self.integer_bits - 1))

    @property
    def error_std(self) -> float:
        """Std of the uniform rounding-error model: ``(2*Delta)/sqrt(12)``.

        Paper Sec. II-A (after Widrow et al.): quantization error is
        white uniform noise on ``[-Delta, Delta]`` with variance
        ``(2*Delta)**2 / 12``.
        """
        return 2.0 * self.delta / math.sqrt(12.0)

    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round to the nearest representable value, saturating the range."""
        x = np.asarray(x, dtype=np.float64)
        q = np.round(x / self.step) * self.step
        return np.clip(q, self.min_value, self.max_value)

    def rounding_error(self, x: np.ndarray) -> np.ndarray:
        """``quantize(x) - x`` (bounded by ``delta`` for in-range inputs)."""
        return self.quantize(x) - x

    def __str__(self) -> str:
        return f"{self.integer_bits}.{self.fraction_bits}"


def fraction_bits_for_delta(delta: float) -> int:
    """Smallest F whose worst-case error is <= delta: ``ceil(-log2(2*delta))``.

    Paper Sec. II-A: "we can assign ceil(-log2(2*delta_x)) as the F".
    """
    if delta <= 0:
        raise QuantizationError(f"delta must be positive; got {delta}")
    exact = -math.log2(2.0 * delta)
    ceiled = math.ceil(exact)
    # Guard against float fuzz on exact powers of two.
    if abs(exact - round(exact)) < 1e-12:
        ceiled = int(round(exact))
    return ceiled


def integer_bits_for_range(max_abs: float) -> int:
    """Signed integer bits avoiding overflow: ``ceil(log2(max|x|)) + 1``."""
    if max_abs <= 0:
        return 1
    exact = math.log2(max_abs)
    ceiled = math.ceil(exact)
    if abs(exact - round(exact)) < 1e-12:
        # A value exactly at a power of two needs one more bit to include it.
        ceiled = int(round(exact)) + 1
    return max(1, ceiled + 1)


def format_for(delta: float, max_abs: float) -> FixedPointFormat:
    """Format guaranteeing error <= delta on values bounded by max_abs."""
    return FixedPointFormat(
        integer_bits=integer_bits_for_range(max_abs),
        fraction_bits=fraction_bits_for_delta(delta),
    )
