"""Per-channel integer-bit allocation (finer-granularity extension).

The paper allocates one format per layer and notes that search-based
methods "can only assign precision at a coarse granularity".  A cheap
finer step — standard practice in later quantization literature — keeps
the layer's fraction width ``F`` (set by the error budget, Eq. 7) but
chooses the *integer* width per channel from each channel's own range,
so channels with small dynamic range stop paying for the layer-wide
worst case.  Because every channel still rounds with the same step
(error <= the same Delta), the paper's error model and guarantees are
untouched; only the stored word lengths shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ..errors import QuantizationError
from ..nn.graph import Network, Tap
from ..nn.statistics import LayerStats
from .allocation import BitwidthAllocation
from .fixed_point import FixedPointFormat, integer_bits_for_range


@dataclass
class ChannelwiseLayer:
    """Per-channel formats for one layer (shared fraction width)."""

    name: str
    fraction_bits: int
    channel_integer_bits: np.ndarray

    @property
    def num_channels(self) -> int:
        return int(self.channel_integer_bits.size)

    @property
    def mean_total_bits(self) -> float:
        """Average stored word length across channels."""
        totals = np.maximum(self.channel_integer_bits + self.fraction_bits, 1)
        return float(totals.mean())

    def tap(self) -> Tap:
        """Quantization tap applying each channel's own format.

        Channels whose integer width plus the (possibly negative)
        shared fraction width would fall below one stored bit keep a
        one-bit word (fraction clamped), matching
        :attr:`~repro.quant.allocation.LayerAllocation.total_bits`.
        """
        formats = [
            FixedPointFormat(
                int(i), max(self.fraction_bits, 1 - int(i))
            )
            for i in self.channel_integer_bits
        ]

        def quantize(x: np.ndarray) -> np.ndarray:
            if x.ndim != 4 or x.shape[1] != len(formats):
                raise QuantizationError(
                    f"channelwise tap for {self.name!r} expects NCHW input "
                    f"with {len(formats)} channels; got {x.shape}"
                )
            out = np.empty_like(x)
            for c, fmt in enumerate(formats):
                out[:, c] = fmt.quantize(x[:, c])
            return out

        return quantize


def measure_channel_ranges(
    network: Network,
    images: np.ndarray,
    layer_names: List[str],
    batch_size: int = 64,
) -> Dict[str, np.ndarray]:
    """Per-channel ``max|x|`` of each named layer's input."""
    maxima: Dict[str, np.ndarray] = {}

    def make_tap(name: str):
        def tap(x: np.ndarray) -> np.ndarray:
            if x.ndim == 4:
                batch_max = np.abs(x).max(axis=(0, 2, 3))
            else:
                batch_max = np.abs(x).max(axis=0)
            if name in maxima:
                maxima[name] = np.maximum(maxima[name], batch_max)
            else:
                maxima[name] = batch_max
            return x

        return tap

    taps = {name: make_tap(name) for name in layer_names}
    for start in range(0, images.shape[0], batch_size):
        network.forward(images[start : start + batch_size], taps=taps)
    return maxima


def channelwise_refinement(
    allocation: BitwidthAllocation,
    channel_ranges: Mapping[str, np.ndarray],
) -> Dict[str, ChannelwiseLayer]:
    """Refine a per-layer allocation with per-channel integer widths.

    Only layers present in ``channel_ranges`` are refined; each keeps
    its fraction width from ``allocation``.
    """
    refined: Dict[str, ChannelwiseLayer] = {}
    for name, ranges in channel_ranges.items():
        layer_alloc = allocation[name]
        integer_bits = np.array(
            [integer_bits_for_range(float(r)) for r in np.asarray(ranges)]
        )
        # Never exceed the layer-wide width (the worst-case channel).
        integer_bits = np.minimum(integer_bits, layer_alloc.integer_bits)
        refined[name] = ChannelwiseLayer(
            name=name,
            fraction_bits=layer_alloc.fraction_bits,
            channel_integer_bits=integer_bits,
        )
    return refined


def channelwise_effective_bits(
    allocation: BitwidthAllocation,
    refined: Mapping[str, ChannelwiseLayer],
    stats: Mapping[str, LayerStats],
) -> float:
    """Input-weighted effective bitwidth with channelwise refinement."""
    total_weight = 0.0
    total_bits = 0.0
    for layer_alloc in allocation:
        weight = float(stats[layer_alloc.name].num_inputs)
        total_weight += weight
        if layer_alloc.name in refined:
            total_bits += weight * refined[layer_alloc.name].mean_total_bits
        else:
            total_bits += weight * layer_alloc.total_bits
    if total_weight == 0:
        raise QuantizationError("no input elements to weight by")
    return total_bits / total_weight


def channelwise_taps(
    allocation: BitwidthAllocation,
    refined: Mapping[str, ChannelwiseLayer],
    network: Network,
) -> Dict[str, Tap]:
    """Taps using channelwise formats where refined, layerwise elsewhere."""
    taps = allocation.taps(network)
    for name, layer in refined.items():
        taps[name] = layer.tap()
    return taps
