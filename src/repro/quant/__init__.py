"""Fixed-point quantization substrate (paper Sec. II-A)."""

from .allocation import BitwidthAllocation, LayerAllocation, pareto_front
from .clipping import (
    ClippedAllocation,
    clip_allocation,
    clipping_saving_percent,
    measure_percentile_ranges,
)
from .channelwise import (
    ChannelwiseLayer,
    channelwise_effective_bits,
    channelwise_refinement,
    channelwise_taps,
    measure_channel_ranges,
)
from .fixed_point import (
    FixedPointFormat,
    format_for,
    fraction_bits_for_delta,
    integer_bits_for_range,
)
from .runtime import (
    PackedTensor,
    QuantizedNetwork,
    RuntimeSpec,
    build_quantized_network,
)
from .serialization import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    save_allocation,
)

__all__ = [
    "BitwidthAllocation",
    "ChannelwiseLayer",
    "ClippedAllocation",
    "FixedPointFormat",
    "LayerAllocation",
    "PackedTensor",
    "QuantizedNetwork",
    "RuntimeSpec",
    "allocation_from_dict",
    "allocation_to_dict",
    "build_quantized_network",
    "channelwise_effective_bits",
    "channelwise_refinement",
    "channelwise_taps",
    "clip_allocation",
    "clipping_saving_percent",
    "format_for",
    "fraction_bits_for_delta",
    "integer_bits_for_range",
    "load_allocation",
    "measure_channel_ranges",
    "measure_percentile_ranges",
    "pareto_front",
    "save_allocation",
]
