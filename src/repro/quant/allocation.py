"""Per-layer bitwidth allocations and their cost accounting.

A :class:`BitwidthAllocation` maps each analyzed layer to a fixed-point
format.  It provides the two cost views of Table II — total input bits
(`#Input_bits`) and total MAC input bits (`#MAC_bits`) — plus the
normalized ``effective_bitwidth`` used throughout Table III, and can
materialize itself as quantization taps to run the network with those
formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..config import MAX_BITWIDTH, MIN_BITWIDTH
from ..errors import QuantizationError
from ..nn.graph import Network, Tap
from ..nn.statistics import LayerStats
from .fixed_point import FixedPointFormat, fraction_bits_for_delta


@dataclass(frozen=True)
class LayerAllocation:
    """Bitwidth decision for one analyzed layer."""

    name: str
    integer_bits: int
    fraction_bits: int

    @property
    def total_bits(self) -> int:
        """Word length, clamped to the supported range."""
        raw = self.integer_bits + self.fraction_bits
        return int(np.clip(raw, MIN_BITWIDTH, MAX_BITWIDTH))

    @property
    def fmt(self) -> FixedPointFormat:
        """The fixed-point format this allocation selects.

        Fraction bits are clamped so the stored word is at least
        ``MIN_BITWIDTH`` wide (mirroring :attr:`total_bits`).
        """
        fraction = max(self.fraction_bits, MIN_BITWIDTH - self.integer_bits)
        return FixedPointFormat(self.integer_bits, fraction)


class BitwidthAllocation:
    """An ordered per-layer bitwidth assignment for a network."""

    def __init__(self, layers: List[LayerAllocation]):
        if not layers:
            raise QuantizationError("allocation must cover at least one layer")
        self._layers = list(layers)
        self._by_name = {a.name: a for a in layers}
        if len(self._by_name) != len(layers):
            raise QuantizationError("duplicate layer in allocation")

    # ------------------------------------------------------------------
    @classmethod
    def from_deltas(
        cls,
        stats: List[LayerStats],
        deltas: Mapping[str, float],
        allow_negative_fraction: bool = True,
    ) -> "BitwidthAllocation":
        """Translate per-layer error boundaries Delta_XK into formats.

        This is the final step of the paper's pipeline (Sec. V-D):
        fraction bits from Delta, integer bits from the measured range.
        ``allow_negative_fraction=False`` disables the paper's
        integer-bit-dropping trick (Sec. II-A), clamping F >= 0 — used
        by the ablation benchmark.
        """
        layers = []
        for stat in stats:
            delta = deltas[stat.name]
            fraction = fraction_bits_for_delta(delta)
            if not allow_negative_fraction:
                fraction = max(fraction, 0)
            layers.append(
                LayerAllocation(
                    name=stat.name,
                    integer_bits=stat.integer_bits,
                    fraction_bits=fraction,
                )
            )
        return cls(layers)

    @classmethod
    def uniform(
        cls, stats: List[LayerStats], total_bits: int
    ) -> "BitwidthAllocation":
        """Same total width everywhere; fraction bits absorb the remainder."""
        layers = [
            LayerAllocation(
                name=stat.name,
                integer_bits=stat.integer_bits,
                fraction_bits=total_bits - stat.integer_bits,
            )
            for stat in stats
        ]
        return cls(layers)

    @classmethod
    def from_bitwidths(
        cls, stats: List[LayerStats], bitwidths: Mapping[str, int]
    ) -> "BitwidthAllocation":
        """Explicit per-layer total widths (integer bits from stats)."""
        layers = [
            LayerAllocation(
                name=stat.name,
                integer_bits=stat.integer_bits,
                fraction_bits=bitwidths[stat.name] - stat.integer_bits,
            )
            for stat in stats
        ]
        return cls(layers)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[LayerAllocation]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, name: str) -> LayerAllocation:
        try:
            return self._by_name[name]
        except KeyError:
            raise QuantizationError(f"no allocation for layer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> List[str]:
        return [a.name for a in self._layers]

    def bitwidths(self) -> Dict[str, int]:
        """Per-layer total word lengths (the headline result)."""
        return {a.name: a.total_bits for a in self._layers}

    def with_layer(self, allocation: LayerAllocation) -> "BitwidthAllocation":
        """Copy with one layer's allocation replaced."""
        layers = [
            allocation if a.name == allocation.name else a for a in self._layers
        ]
        if allocation.name not in self._by_name:
            raise QuantizationError(
                f"layer {allocation.name!r} is not part of this allocation"
            )
        return BitwidthAllocation(layers)

    # ------------------------------------------------------------------
    # Cost accounting (Table II rows: #Input_bits, #MAC_bits)
    # ------------------------------------------------------------------
    def weighted_bits(self, weights: Mapping[str, float]) -> float:
        """``sum_K rho_K * B_K`` for an arbitrary weighting rho."""
        return float(
            sum(weights[a.name] * a.total_bits for a in self._layers)
        )

    def input_bits(self, stats: Mapping[str, LayerStats]) -> float:
        """Total bits to read all analyzed-layer inputs for one image."""
        return self.weighted_bits(
            {name: stats[name].num_inputs for name in self.names}
        )

    def mac_bits(self, stats: Mapping[str, LayerStats]) -> float:
        """Total input bits consumed by all MAC operations for one image."""
        return self.weighted_bits(
            {name: stats[name].num_macs for name in self.names}
        )

    def effective_bitwidth(self, weights: Mapping[str, float]) -> float:
        """``sum(rho_K * B_K) / sum(rho_K)`` (paper Sec. V-D)."""
        total_weight = float(sum(weights[name] for name in self.names))
        if total_weight <= 0:
            raise QuantizationError("effective bitwidth needs positive weights")
        return self.weighted_bits(weights) / total_weight

    # ------------------------------------------------------------------
    def taps(self, network: Optional[Network] = None) -> Dict[str, Tap]:
        """Quantization taps: run the network with these formats applied.

        Each analyzed layer's input is replaced by its fixed-point
        rounding, which is the ground-truth test that an allocation
        meets the accuracy constraint.
        """
        if network is not None:
            for name in self.names:
                if name not in network:
                    raise QuantizationError(
                        f"allocation targets layer {name!r} absent from "
                        f"network {network.name!r}"
                    )
        taps: Dict[str, Tap] = {}
        for alloc in self._layers:
            fmt = alloc.fmt
            taps[alloc.name] = fmt.quantize
        return taps

    def summary(self) -> str:
        """Human-readable per-layer table."""
        rows = [f"{'layer':<16} {'I':>3} {'F':>4} {'bits':>5}"]
        for a in self._layers:
            rows.append(
                f"{a.name:<16} {a.integer_bits:>3} {a.fraction_bits:>4} "
                f"{a.total_bits:>5}"
            )
        return "\n".join(rows)


def pareto_front(
    candidates: List[Tuple[BitwidthAllocation, float, float]],
) -> List[Tuple[BitwidthAllocation, float, float]]:
    """Non-dominated subset of (allocation, cost_a, cost_b) triples.

    Utility for multi-objective exploration: keeps allocations for which
    no other candidate is better on both costs.
    """
    front = []
    for item in candidates:
        __, cost_a, cost_b = item
        dominated = any(
            other_a <= cost_a and other_b <= cost_b
            and (other_a < cost_a or other_b < cost_b)
            for __, other_a, other_b in candidates
        )
        if not dominated:
            front.append(item)
    return front
