"""repro — reproduction of "Multi-objective Precision Optimization of
Deep Neural Networks for Edge Devices" (Ho, Vaddi, Wong; DATE 2019).

The package implements the paper's analytical precision-allocation
method end to end on a pure-numpy substrate:

* :mod:`repro.nn` — CNN inference engine with error-injection taps.
* :mod:`repro.models` — scaled replicas of the paper's eight networks.
* :mod:`repro.data` — synthetic ImageNet-like dataset.
* :mod:`repro.quant` — fixed-point formats and bit accounting.
* :mod:`repro.hardware` — MAC energy / bandwidth / accelerator models.
* :mod:`repro.analysis` — lambda/theta profiling and sigma search.
* :mod:`repro.engine` — vectorized, optionally parallel injection
  campaigns (replay plans, trial batching, worker pools).
* :mod:`repro.optimize` — multi-objective xi optimization (Eq. 8).
* :mod:`repro.baselines` — uniform / equal-scheme / search baselines.
* :mod:`repro.weights` — weight bitwidth search (Sec. V-E).
* :mod:`repro.resilience` — guardrails, solver fallback chain,
  resumable run state, and the chaos-testing harness.
* :mod:`repro.check` — static analysis: graph/allocation verifier
  (shape, dtype, range, overflow, xi audits) and numerical linter.
* :mod:`repro.telemetry` — zero-dependency observability: tracing
  spans, metrics, run manifests, JSONL traces (``docs/observability.md``).
* :mod:`repro.pipeline` — the end-to-end :class:`PrecisionOptimizer`.
* :mod:`repro.experiments` — drivers for every paper table and figure.

Quickstart::

    from repro import PrecisionOptimizer
    from repro.models import pretrained_model

    network, train, test, info = pretrained_model("alexnet")
    optimizer = PrecisionOptimizer(network, test)
    result = optimizer.optimize(objective="input", accuracy_drop=0.01)
    print(result.bitwidths)
"""

from .config import (
    DEFAULT_SEED,
    FAST_PROFILE,
    FAST_SEARCH,
    ParallelSettings,
    ProfileSettings,
    SearchSettings,
    TelemetrySettings,
)
from .errors import (
    DegradedResultWarning,
    GraphError,
    ModelError,
    NumericalGuardError,
    OptimizationError,
    ProfilingError,
    QuantizationError,
    ReproError,
    ResumeError,
    RetryExhaustedError,
    SearchError,
    ShapeError,
    TransientError,
)
from .pipeline import OptimizationOutcome, PrecisionOptimizer
from .telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "DegradedResultWarning",
    "FAST_PROFILE",
    "FAST_SEARCH",
    "GraphError",
    "ModelError",
    "NumericalGuardError",
    "OptimizationError",
    "OptimizationOutcome",
    "ParallelSettings",
    "PrecisionOptimizer",
    "ProfileSettings",
    "ProfilingError",
    "QuantizationError",
    "ReproError",
    "ResumeError",
    "RetryExhaustedError",
    "SearchError",
    "SearchSettings",
    "ShapeError",
    "Telemetry",
    "TelemetrySettings",
    "TransientError",
    "__version__",
]
