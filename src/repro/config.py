"""Global defaults shared across the repro library.

Every experiment in the paper depends on a handful of knobs (how many
images to profile on, how many delta points per regression, search
tolerances).  The defaults here mirror the paper's reported settings
where speed allows, and provide reduced "fast" profiles for tests and
benchmarks on the pure-Python substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seed used by every deterministic component unless overridden.
DEFAULT_SEED = 20190325

#: dtype for all activation math.  float64 keeps the reference forward
#: pass far below injected-noise magnitudes (paper used float32 on GPU;
#: we need extra headroom because injected deltas go down to 2**-20).
DTYPE = "float64"

#: Paper Sec. V-A: ~20 delta points per layer regression.
PAPER_REGRESSION_POINTS = 20

#: Paper Sec. V-A: 50-200 images give stable regressions.
PAPER_PROFILE_IMAGES = 50

#: Paper Sec. V-C: binary search stops when bounds are closer than 0.01.
SIGMA_SEARCH_TOLERANCE = 0.01

#: Paper Sec. V-C: initial guess for the sigma upper bound.
SIGMA_SEARCH_INITIAL_UPPER = 1.0

#: Hard cap on any single bitwidth (fixed-point words wider than this
#: are indistinguishable from exact for our value ranges).
MAX_BITWIDTH = 32

#: Smallest total bitwidth a layer may be assigned.
MIN_BITWIDTH = 1


@dataclass(frozen=True)
class ProfileSettings:
    """Settings for the error-injection profiling stage (Sec. V-A)."""

    num_images: int = PAPER_PROFILE_IMAGES
    num_delta_points: int = PAPER_REGRESSION_POINTS
    #: Delta grid endpoints, as fractions of each layer's input std
    #: (the profiler's default relative mode) or absolute values.  The
    #: initial grid is deliberately conservative; the pipeline refines
    #: it around the operating point (paper Sec. V-A: "Guess an initial
    #: value of Delta ... change the value ... and loop").
    delta_min: float = 2.0 ** -9
    delta_max: float = 2.0 ** -2
    #: Independent noise realizations averaged per delta point.
    num_repeats: int = 2
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_images < 1:
            raise ValueError("num_images must be >= 1")
        if self.num_delta_points < 2:
            raise ValueError("need at least 2 delta points for a regression")
        if not 0 < self.delta_min < self.delta_max:
            raise ValueError("require 0 < delta_min < delta_max")
        if self.num_repeats < 1:
            raise ValueError("num_repeats must be >= 1")


@dataclass(frozen=True)
class SearchSettings:
    """Settings for the sigma binary search (Sec. V-C)."""

    tolerance: float = SIGMA_SEARCH_TOLERANCE
    initial_upper: float = SIGMA_SEARCH_INITIAL_UPPER
    max_doublings: int = 16
    num_images: int = 200
    #: Noise realizations averaged per accuracy test.  Paper Fig. 3:
    #: "Each point is the average of 3 measurements."
    num_trials: int = 3
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.initial_upper <= 0:
            raise ValueError("initial_upper must be positive")
        if self.num_trials < 1:
            raise ValueError("num_trials must be >= 1")


@dataclass(frozen=True)
class ParallelSettings:
    """Execution knobs for the vectorized injection engine.

    The engine's determinism contract (``docs/performance.md``): fitted
    lambda/theta are bitwise identical for any ``jobs``, ``backend``,
    ``trial_batch``, and work order, because every trial draws from its
    own ``np.random.SeedSequence``-spawned stream and partial sums are
    reduced in a fixed order.
    """

    #: Worker count for the layer-level campaign pool.  1 = run inline
    #: (no pool); N > 1 fans the per-layer injection campaigns out to a
    #: ``concurrent.futures`` pool.
    jobs: int = 1
    #: "thread" shares the clean activation caches directly (numpy
    #: releases the GIL inside BLAS/ufunc kernels); "process" ships them
    #: through shared memory and pays a spawn + pickle cost, which only
    #: amortizes for large campaigns.
    backend: str = "thread"
    #: Noise draws stacked along the batch axis per replay pass.  Small
    #: chunks keep the working set near cache; large chunks amortize
    #: more Python/im2col overhead per pass.
    trial_batch: int = 4
    #: Retries for worker tasks that fail with a TransientError before
    #: the failure is surfaced as a ProfilingError.
    transient_retries: int = 2
    #: Use the engine's fast bitwise-faithful kernels during replay.
    fast_kernels: bool = True
    #: Raise glibc's mmap/trim thresholds once per process so large
    #: replay temporaries recycle freed arenas instead of paying a page
    #: fault per touched page (no-op on non-glibc platforms).
    tune_allocator: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.backend not in ("thread", "process"):
            raise ValueError('backend must be "thread" or "process"')
        if self.trial_batch < 1:
            raise ValueError("trial_batch must be >= 1")
        if self.transient_retries < 0:
            raise ValueError("transient_retries must be >= 0")


@dataclass(frozen=True)
class TelemetrySettings:
    """Observability knobs (see ``docs/observability.md``).

    Run manifests are default-on and independent of these settings;
    tracing spans and the metrics registry are opt-in via ``enabled``
    because they buffer events for the lifetime of a run.  Telemetry
    never changes numerical results: fitted lambda/theta and allocator
    outputs are bit-identical with tracing on or off.
    """

    #: Collect tracing spans and metrics for this run.
    enabled: bool = False
    #: Write the JSONL trace here when the run finishes ("" = no file;
    #: a non-empty path implies ``enabled``).
    trace_path: str = ""
    #: Directory for the append-only lifecycle event bus ("" = no
    #: events).  Unlike ``trace_path`` this is streamed *during* the
    #: run, so ``repro monitor`` can tail it; it does not imply
    #: ``enabled``.
    events_dir: str = ""
    #: Sample process resources (RSS / CPU / GC) at stage boundaries
    #: when telemetry is active.  Off the numeric hot path either way.
    sample_resources: bool = True

    @property
    def active(self) -> bool:
        """True when any telemetry collection should happen."""
        return self.enabled or bool(self.trace_path)


#: Fast settings used by the test-suite and quick examples.
FAST_PROFILE = ProfileSettings(num_images=16, num_delta_points=8)
FAST_SEARCH = SearchSettings(num_images=64, tolerance=0.02)
