"""Model zoo: scaled replicas of the paper's eight CNNs + a test model.

Each replica preserves the original's layer topology and the paper's
analyzed-layer count (Table III ``# layers`` column); see DESIGN.md for
the substitution rationale.
"""

from .calibrate import lsuv_calibrate
from .checkpoint import load_checkpoint, save_checkpoint
from .evaluate import predict, relative_drop, top1_accuracy
from .pretrain import fit_classifier_head, pretrain
from .zoo import (
    MODEL_NAMES,
    PAPER_LAYER_COUNTS,
    build_model,
    cached_pretrained_model,
    pretrained_model,
)

__all__ = [
    "MODEL_NAMES",
    "PAPER_LAYER_COUNTS",
    "build_model",
    "cached_pretrained_model",
    "fit_classifier_head",
    "load_checkpoint",
    "lsuv_calibrate",
    "predict",
    "pretrain",
    "pretrained_model",
    "relative_drop",
    "save_checkpoint",
    "top1_accuracy",
]
