"""Classification evaluation helpers.

Top-1 accuracy is the paper's quality metric; all constraints are stated
as *relative* top-1 accuracy drops (1%, 5%) against the float baseline.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..data import Dataset
from ..nn.graph import Network, Tap


def predict(
    network: Network,
    images: np.ndarray,
    taps: Optional[Mapping[str, Tap]] = None,
    batch_size: int = 64,
) -> np.ndarray:
    """Predicted class per image (argmax of logits; softmax is monotone)."""
    outputs = []
    for start in range(0, images.shape[0], batch_size):
        logits = network.forward(images[start : start + batch_size], taps=taps)
        outputs.append(np.argmax(logits.reshape(logits.shape[0], -1), axis=1))
    return np.concatenate(outputs)


def top1_accuracy(
    network: Network,
    dataset: Dataset,
    taps: Optional[Mapping[str, Tap]] = None,
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy on a dataset, optionally with taps (noise, quant)."""
    predictions = predict(network, dataset.images, taps=taps, batch_size=batch_size)
    return float(np.mean(predictions == dataset.labels))


def relative_drop(baseline: float, observed: float) -> float:
    """Relative top-1 accuracy drop, as used in Table III ("1% relative")."""
    if baseline <= 0:
        return 0.0
    return (baseline - observed) / baseline
