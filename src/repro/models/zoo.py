"""Model registry and pretrained-model factory."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..config import DEFAULT_SEED
from ..data import Dataset, SyntheticImageNet
from ..errors import ModelError
from ..nn import Network
from .alexnet import build_alexnet
from .calibrate import lsuv_calibrate
from .googlenet import build_googlenet
from .lenet import build_lenet
from .mobilenet import build_mobilenet
from .nin import build_nin
from .pretrain import pretrain
from .resnet import build_resnet50, build_resnet152
from .squeezenet import build_squeezenet
from .vgg import build_vgg19

_BUILDERS: Dict[str, Callable[..., Network]] = {
    "lenet": build_lenet,
    "alexnet": build_alexnet,
    "nin": build_nin,
    "googlenet": build_googlenet,
    "vgg19": build_vgg19,
    "resnet50": build_resnet50,
    "resnet152": build_resnet152,
    "squeezenet": build_squeezenet,
    "mobilenet": build_mobilenet,
}

#: Names of the paper's eight evaluation networks, in Table III order.
MODEL_NAMES = [
    "alexnet",
    "nin",
    "googlenet",
    "vgg19",
    "resnet50",
    "resnet152",
    "squeezenet",
    "mobilenet",
]

#: ``# layers`` column of Table III — analyzed-layer counts we must match.
PAPER_LAYER_COUNTS = {
    "alexnet": 5,
    "nin": 12,
    "googlenet": 57,
    "vgg19": 16,
    "resnet50": 54,
    "resnet152": 156,
    "squeezenet": 26,
    "mobilenet": 28,
}


def build_model(
    name: str, num_classes: int = 16, seed: int = DEFAULT_SEED
) -> Network:
    """Build an untrained (random-feature) replica by registry name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise ModelError(f"unknown model {name!r}; known models: {known}") from None
    return builder(num_classes=num_classes, seed=seed)


def pretrained_model(
    name: str,
    source: Optional[SyntheticImageNet] = None,
    train_count: int = 512,
    test_count: int = 256,
    seed: int = DEFAULT_SEED,
    calibration_std: float = 50.0,
) -> Tuple[Network, Dataset, Dataset, Dict[str, float]]:
    """Build a replica, fit its head, and return (net, train, test, info).

    This is the offline equivalent of downloading a Caffe Model Zoo
    checkpoint: a deterministic network with genuine (well above chance)
    classification accuracy on the synthetic task, with activation
    scales calibrated to a realistic dynamic range (see
    :func:`~repro.models.calibrate.lsuv_calibrate`).
    """
    if source is None:
        source = SyntheticImageNet(seed=seed)
    network = build_model(name, num_classes=source.num_classes, seed=seed)
    train, test = source.train_test(train_count, test_count)
    calibration = train.images[: min(32, len(train))]
    lsuv_calibrate(network, calibration, target_std=calibration_std)
    info = pretrain(network, train, test)
    return network, train, test, info


def cached_pretrained_model(
    name: str,
    cache_dir,
    source: Optional[SyntheticImageNet] = None,
    train_count: int = 512,
    test_count: int = 256,
    seed: int = DEFAULT_SEED,
) -> Tuple[Network, Dataset, Dataset, Dict[str, float]]:
    """Like :func:`pretrained_model`, but parameters persist on disk.

    The first call pretrains and saves a checkpoint under ``cache_dir``;
    subsequent calls with the same name/seed restore it, skipping the
    calibration and head fit.
    """
    from pathlib import Path

    from .checkpoint import load_checkpoint, save_checkpoint
    from .evaluate import top1_accuracy

    if source is None:
        source = SyntheticImageNet(seed=seed)
    path = Path(cache_dir) / f"{name}-seed{seed}.npz"
    train, test = source.train_test(train_count, test_count)
    if path.exists():
        network = build_model(name, num_classes=source.num_classes, seed=seed)
        load_checkpoint(network, path)
        info = {
            "train_accuracy": top1_accuracy(network, train),
            "test_accuracy": top1_accuracy(network, test),
        }
        return network, train, test, info
    network, train, test, info = pretrained_model(
        name,
        source=source,
        train_count=train_count,
        test_count=test_count,
        seed=seed,
    )
    save_checkpoint(network, path)
    return network, train, test, info
