"""MobileNet v1 replica (28 analyzed layers).

One stem convolution, thirteen depthwise-separable blocks (depthwise
3x3 + pointwise 1x1 = 26 convs) and the final fully connected layer
give the paper's 28 analyzed layers.  Folded batch-norm affines follow
each convolution, as in the deployed Caffe model.
"""

from __future__ import annotations

from typing import List

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder

#: (pointwise output channels, depthwise stride) for the 13 blocks (scaled).
_BLOCKS = [
    (24, 1),
    (32, 2),
    (32, 1),
    (48, 1),
    (48, 1),
    (64, 2),
    (64, 1),
    (64, 1),
    (64, 1),
    (64, 1),
    (64, 1),
    (96, 1),
    (96, 1),
]


def build_mobilenet(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    b = NetworkBuilder("mobilenet", (3, 32, 32), seed=seed)
    analyzed: List[str] = ["conv1"]
    b.conv("conv1", 16, 3, stride=2, padding=1, relu=False)
    b.batch_norm("conv1_bn")
    b.relu("conv1_relu")
    for index, (channels, stride) in enumerate(_BLOCKS, start=1):
        dw = f"dw{index}"
        pw = f"pw{index}"
        b.depthwise_conv(dw, 3, stride=stride, padding=1, relu=False)
        b.batch_norm(f"{dw}_bn")
        b.relu(f"{dw}_relu")
        b.conv(pw, channels, 1, padding=0, relu=False)
        b.batch_norm(f"{pw}_bn")
        b.relu(f"{pw}_relu")
        analyzed += [dw, pw]
    b.global_pool("gap")
    b.dense("fc", num_classes)
    analyzed.append("fc")
    return b.build(analyzed_layers=analyzed)
