"""SqueezeNet replica (26 analyzed conv layers).

conv1, eight fire modules (squeeze 1x1, expand 1x1, expand 3x3 = 3
convs each) and conv10 give the paper's 26 layers.  The fitted dense
head after global pooling is not analyzed.
"""

from __future__ import annotations

from typing import List

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder

#: (squeeze, expand) widths per fire module (scaled from 16/64..64/256).
_FIRE = [(8, 16), (8, 16), (12, 24), (12, 24), (16, 32), (16, 32), (16, 32), (20, 40)]


def _fire(
    b: NetworkBuilder, index: int, source: str, squeeze: int, expand: int,
    analyzed: List[str],
) -> str:
    tag = f"fire{index}"
    b.conv(f"{tag}_squeeze", squeeze, 1, padding=0, source=source)
    squeezed = b.current
    e1 = b.conv(f"{tag}_e1x1", expand, 1, padding=0, source=squeezed)
    e3 = b.conv(f"{tag}_e3x3", expand, 3, padding=1, source=squeezed)
    analyzed += [f"{tag}_squeeze", f"{tag}_e1x1", f"{tag}_e3x3"]
    return b.concat(f"{tag}_out", [e1, e3])


def build_squeezenet(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    b = NetworkBuilder("squeezenet", (3, 32, 32), seed=seed)
    analyzed: List[str] = ["conv1"]
    b.conv("conv1", 24, 3, stride=2, padding=1)
    current = b.max_pool("pool1", 2)
    for index, (squeeze, expand) in enumerate(_FIRE[:4], start=2):
        current = _fire(b, index, current, squeeze, expand, analyzed)
    current = b.max_pool("pool5", 2)
    for index, (squeeze, expand) in enumerate(_FIRE[4:], start=6):
        current = _fire(b, index, current, squeeze, expand, analyzed)
    b.conv("conv10", 48, 1, padding=0)
    analyzed.append("conv10")
    b.global_pool("gap")
    b.dense("fc", num_classes)
    return b.build(analyzed_layers=analyzed)
