"""VGG-19 replica (16 analyzed conv layers).

VGG-19 has sixteen 3x3 convolutions in five blocks (2-2-4-4-4) plus
three fully connected layers; as in the paper, only the convolutions
are analyzed.
"""

from __future__ import annotations

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder

#: Convolutions per block and channel widths (scaled from 64..512).
_BLOCKS = [(2, 12), (2, 16), (4, 24), (4, 32), (4, 32)]


def build_vgg19(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    b = NetworkBuilder("vgg19", (3, 32, 32), seed=seed)
    analyzed = []
    index = 0
    for block, (convs, channels) in enumerate(_BLOCKS, start=1):
        for __ in range(convs):
            index += 1
            analyzed.append(f"conv{index}")
            b.conv(f"conv{index}", channels, 3, padding=1)
        b.max_pool(f"pool{block}", 2)
    b.flatten("flat")
    b.dense("fc6", 128, relu=True)
    b.dense("fc7", 128, relu=True)
    b.dense("fc8", num_classes)
    return b.build(analyzed_layers=analyzed)
