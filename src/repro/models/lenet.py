"""A small LeNet-style CNN used by the test-suite and quickstart.

Not one of the paper's eight networks, but structurally identical to
them (conv / pool / ReLU / dense chain), so every analysis code path is
exercised at a fraction of the cost.
"""

from __future__ import annotations

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder


def build_lenet(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    """LeNet-style: 3 conv layers + dense head, all analyzed."""
    b = NetworkBuilder("lenet", (3, 32, 32), seed=seed)
    b.conv("conv1", 8, 5, padding=2)
    b.max_pool("pool1", 2)
    b.conv("conv2", 16, 5, padding=2)
    b.max_pool("pool2", 2)
    b.conv("conv3", 16, 3, padding=1)
    b.global_pool("gap")
    b.dense("fc", num_classes)
    return b.build(
        analyzed_layers=["conv1", "conv2", "conv3", "fc"],
    )
