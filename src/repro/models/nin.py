"""Network-in-Network replica (12 analyzed conv layers; Fig. 4's subject).

NiN stacks "mlpconv" blocks: one spatial convolution followed by two
1x1 convolutions.  Four blocks of three convolutions give the paper's
12 layers.  The classification head (global average pool + fitted
dense) is not analyzed, matching the paper's convs-only treatment of
NiN.
"""

from __future__ import annotations

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder


def _mlpconv(
    b: NetworkBuilder,
    index: int,
    channels: int,
    kernel: int,
) -> list:
    names = []
    names.append(b.conv(f"conv{3 * index + 1}", channels, kernel))
    names.append(b.conv(f"conv{3 * index + 2}", channels, 1, padding=0))
    names.append(b.conv(f"conv{3 * index + 3}", channels, 1, padding=0))
    return names


def build_nin(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    b = NetworkBuilder("nin", (3, 32, 32), seed=seed)
    analyzed = []
    analyzed += _mlpconv(b, 0, 16, 5)
    b.max_pool("pool1", 2)
    analyzed += _mlpconv(b, 1, 24, 5)
    b.max_pool("pool2", 2)
    analyzed += _mlpconv(b, 2, 32, 3)
    b.max_pool("pool3", 2)
    analyzed += _mlpconv(b, 3, 32, 3)
    b.global_pool("gap")
    b.dense("fc", num_classes)
    # conv names carry the relu suffix from the builder; strip to conv names
    conv_names = [name.replace("_relu", "") for name in analyzed]
    return b.build(analyzed_layers=conv_names)
