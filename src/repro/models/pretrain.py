"""Synthetic "pretraining" of model-zoo networks.

The paper uses Caffe Model Zoo weights; offline, we substitute random
(He-initialized) convolutional feature extractors with a classifier
head fitted by ridge regression on a synthetic dataset.  Random
convolutional features are a classical strong baseline, and a fitted
head gives the two properties the paper's method actually relies on:

* clean top-1 accuracy is well above chance, and
* accuracy degrades monotonically as output-layer numerical error grows
  (Sec. V-C: "sigma_YL monotonically increases when accuracy decreases").

The fitted layer must be the network's output layer (the paper's layer
L, the logits before softmax).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data import Dataset
from ..errors import ModelError
from ..nn.graph import Network
from ..nn.layers import Dense
from .evaluate import top1_accuracy


def _collect_head_features(
    network: Network, head_name: str, images: np.ndarray, batch_size: int
) -> np.ndarray:
    """Inputs reaching the head layer, via a recording tap."""
    recorded = []

    def tap(x: np.ndarray) -> np.ndarray:
        recorded.append(x.reshape(x.shape[0], -1).copy())
        return x

    for start in range(0, images.shape[0], batch_size):
        network.forward(images[start : start + batch_size], taps={head_name: tap})
    return np.concatenate(recorded, axis=0)


def fit_classifier_head(
    network: Network,
    train: Dataset,
    ridge: float = 1e-3,
    batch_size: int = 64,
) -> None:
    """Fit the output Dense layer by one-vs-all ridge regression.

    Replaces the head's weight and bias in place.  Targets are +/-1
    one-vs-all scores, so the logits land on an O(1) scale — which makes
    the paper's sigma_YL values (0.1 .. a few) directly meaningful, as
    in Fig. 3 where accuracy falls off over sigma_YL in [0, ~4].
    """
    head = network[network.output_name]
    if not isinstance(head, Dense):
        raise ModelError(
            f"output layer {network.output_name!r} must be Dense to be fitted; "
            f"got {type(head).__name__}"
        )
    if head.out_features != train.num_classes:
        raise ModelError(
            f"head produces {head.out_features} logits but dataset has "
            f"{train.num_classes} classes"
        )
    features = _collect_head_features(
        network, head.name, train.images, batch_size
    )
    count, dim = features.shape
    targets = -np.ones((count, train.num_classes))
    targets[np.arange(count), train.labels] = 1.0

    # Normalize feature scale so the ridge strength is data-independent.
    feature_scale = float(features.std()) or 1.0
    scaled = features / feature_scale
    augmented = np.concatenate([scaled, np.ones((count, 1))], axis=1)
    gram = augmented.T @ augmented + ridge * count * np.eye(dim + 1)
    solution = np.linalg.solve(gram, augmented.T @ targets)
    head.weight = (solution[:dim].T / feature_scale).astype(np.float64)
    head.bias = solution[dim].astype(np.float64)


def pretrain(
    network: Network,
    train: Dataset,
    test: Dataset,
    ridge: float = 1e-3,
    batch_size: int = 64,
) -> Dict[str, float]:
    """Fit the head and report train/test accuracy."""
    fit_classifier_head(network, train, ridge=ridge, batch_size=batch_size)
    return {
        "train_accuracy": top1_accuracy(network, train, batch_size=batch_size),
        "test_accuracy": top1_accuracy(network, test, batch_size=batch_size),
    }
