"""GoogleNet (Inception v1) replica (57 analyzed conv layers).

Three stem convolutions plus nine inception modules of six
convolutions each (1x1, 3x3-reduce, 3x3, 5x5-reduce, 5x5, pool-proj)
give the paper's 57 analyzed layers.  The fully connected classifier is
not analyzed, as in the paper.
"""

from __future__ import annotations

from typing import Tuple

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder

#: (1x1, 3x3red, 3x3, 5x5red, 5x5, pool_proj) widths per module (scaled).
_MODULES = [
    ("3a", (12, 8, 16, 4, 8, 8)),
    ("3b", (16, 12, 24, 6, 8, 8)),
    ("4a", (16, 12, 24, 6, 8, 8)),
    ("4b", (16, 12, 24, 6, 8, 8)),
    ("4c", (16, 12, 28, 6, 12, 12)),
    ("4d", (20, 14, 28, 6, 12, 12)),
    ("4e", (24, 16, 32, 8, 12, 12)),
    ("5a", (24, 16, 32, 8, 12, 12)),
    ("5b", (28, 16, 36, 8, 16, 16)),
]


def _inception(
    b: NetworkBuilder,
    tag: str,
    source: str,
    widths: Tuple[int, int, int, int, int, int],
    analyzed: list,
) -> str:
    w1, w3r, w3, w5r, w5, wp = widths
    branch1 = b.conv(f"inc{tag}_1x1", w1, 1, padding=0, source=source)
    b.conv(f"inc{tag}_3x3r", w3r, 1, padding=0, source=source)
    branch3 = b.conv(f"inc{tag}_3x3", w3, 3, padding=1)
    b.conv(f"inc{tag}_5x5r", w5r, 1, padding=0, source=source)
    branch5 = b.conv(f"inc{tag}_5x5", w5, 5, padding=2)
    b.max_pool(f"inc{tag}_pool", 3, stride=1, padding=1, source=source)
    branchp = b.conv(f"inc{tag}_proj", wp, 1, padding=0)
    analyzed += [
        f"inc{tag}_1x1",
        f"inc{tag}_3x3r",
        f"inc{tag}_3x3",
        f"inc{tag}_5x5r",
        f"inc{tag}_5x5",
        f"inc{tag}_proj",
    ]
    return b.concat(f"inc{tag}_out", [branch1, branch3, branch5, branchp])


def build_googlenet(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    b = NetworkBuilder("googlenet", (3, 32, 32), seed=seed)
    analyzed = ["conv1", "conv2_reduce", "conv2"]
    b.conv("conv1", 16, 5, stride=2, padding=2)
    b.max_pool("pool1", 2)
    b.lrn("lrn1")
    b.conv("conv2_reduce", 12, 1, padding=0)
    b.conv("conv2", 24, 3, padding=1)
    b.lrn("lrn2")
    current = b.current
    current = _inception(b, "3a", current, _MODULES[0][1], analyzed)
    current = _inception(b, "3b", current, _MODULES[1][1], analyzed)
    current = b.max_pool("pool3", 2)
    for tag, widths in _MODULES[2:7]:
        current = _inception(b, tag, current, widths, analyzed)
    current = b.max_pool("pool4", 2)
    for tag, widths in _MODULES[7:]:
        current = _inception(b, tag, current, widths, analyzed)
    b.global_pool("gap")
    b.dense("fc", num_classes)
    return b.build(analyzed_layers=analyzed)
