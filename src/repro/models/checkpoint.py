"""Model checkpointing: save and restore network parameters.

The zoo's "pretraining" (LSUV calibration + ridge head fit) costs
seconds to minutes per network; checkpoints make it pay once.  Only
parameters are stored — the architecture is rebuilt from the registry,
so a checkpoint is a ``.npz`` of named arrays plus a tiny manifest,
robust to refactors of the layer classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..errors import ModelError
from ..nn.graph import Network
from ..nn.layers import ChannelAffine, Conv2D, Dense

PathLike = Union[str, Path]

#: Bumped when the stored format changes incompatibly.
CHECKPOINT_VERSION = 1


def _parameter_arrays(network: Network) -> Dict[str, np.ndarray]:
    """All learnable arrays, keyed ``<layer>/<tensor>``."""
    arrays: Dict[str, np.ndarray] = {}
    for layer in network.layers:
        if isinstance(layer, (Conv2D, Dense)):
            arrays[f"{layer.name}/weight"] = layer.weight
            if layer.bias is not None:
                arrays[f"{layer.name}/bias"] = layer.bias
        elif isinstance(layer, ChannelAffine):
            arrays[f"{layer.name}/scale"] = layer.scale
            arrays[f"{layer.name}/shift"] = layer.shift
    return arrays


def save_checkpoint(network: Network, path: PathLike) -> None:
    """Write the network's parameters (and a manifest) to ``path``."""
    path = Path(path)
    arrays = _parameter_arrays(network)
    manifest = {
        "version": CHECKPOINT_VERSION,
        "network": network.name,
        "input_shape": list(network.input_shape),
        "num_layers": len(network),
        "parameters": int(network.num_parameters()),
    }
    payload = dict(arrays)
    payload["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_checkpoint(network: Network, path: PathLike) -> Dict[str, object]:
    """Restore parameters into ``network`` in place; returns the manifest.

    The network must have been built with the same architecture (layer
    names and tensor shapes are checked).
    """
    path = Path(path)
    if not path.exists():
        raise ModelError(f"checkpoint {path} does not exist")
    with np.load(path) as data:
        if "__manifest__" not in data:
            raise ModelError(f"{path} is not a repro checkpoint")
        manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise ModelError(
                f"checkpoint version {manifest.get('version')} is not "
                f"supported (expected {CHECKPOINT_VERSION})"
            )
        if manifest.get("network") != network.name:
            raise ModelError(
                f"checkpoint is for network {manifest.get('network')!r}, "
                f"not {network.name!r}"
            )
        expected = _parameter_arrays(network)
        stored = {k: data[k] for k in data.files if k != "__manifest__"}
        if set(stored) != set(expected):
            missing = sorted(set(expected) - set(stored))
            extra = sorted(set(stored) - set(expected))
            raise ModelError(
                f"checkpoint does not match architecture "
                f"(missing={missing[:3]}, extra={extra[:3]})"
            )
        for key, array in stored.items():
            if array.shape != expected[key].shape:
                raise ModelError(
                    f"shape mismatch for {key}: checkpoint "
                    f"{array.shape} vs network {expected[key].shape}"
                )
        for key, array in stored.items():
            layer_name, tensor = key.split("/", 1)
            layer = network[layer_name]
            setattr(layer, tensor, array.astype(np.float64))
    return manifest
