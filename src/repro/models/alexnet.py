"""AlexNet replica (5 analyzed conv layers, as in the paper's Table II).

Scaled to the 32x32 synthetic substrate while preserving AlexNet's
structure: five convolutions with grouped conv2/conv4/conv5, LRN after
conv1/conv2, three max pools, and three fully connected layers.  Only
the convolutions are analyzed layers, mirroring the paper's choice
("Stripes ignored the fully connected layers, so we did the same for
AlexNet, ...", Sec. VI).
"""

from __future__ import annotations

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder

#: Analyzed layers in paper order (Table II columns).
ANALYZED = ["conv1", "conv2", "conv3", "conv4", "conv5"]


def build_alexnet(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    b = NetworkBuilder("alexnet", (3, 32, 32), seed=seed)
    b.conv("conv1", 16, 5, padding=2)
    b.lrn("lrn1")
    b.max_pool("pool1", 2)
    b.conv("conv2", 32, 5, padding=2, groups=2)
    b.lrn("lrn2")
    b.max_pool("pool2", 2)
    b.conv("conv3", 48, 3, padding=1)
    b.conv("conv4", 48, 3, padding=1, groups=2)
    b.conv("conv5", 32, 3, padding=1, groups=2)
    b.max_pool("pool5", 2)
    b.flatten("flat")
    b.dense("fc6", 128, relu=True)
    b.dense("fc7", 128, relu=True)
    b.dense("fc8", num_classes)
    return b.build(analyzed_layers=ANALYZED)
