"""Data-driven activation-scale calibration (LSUV-style).

Randomly initialized deep feature extractors drift in activation scale
(variance decays or explodes across tens of layers), whereas trained
networks keep layer activations on a stable scale.  To make the model
zoo statistically resemble its pretrained counterparts, each Conv2D /
Dense layer's weights are rescaled so the layer's output standard
deviation on a calibration batch hits a target — the layer-sequential
unit-variance (LSUV) initialization of Mishkin & Matas, applied with a
pixel-scale target instead of 1.0.

This matters for the reproduction: the paper's integer bitwidths come
from measured ``max|X_K|`` (Table II row 3: values 139..443), so the
substrate must hold activations in a comparable, non-degenerate range
for bitwidth results to be meaningful.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ModelError
from ..nn.graph import INPUT, Network
from ..nn.layers import Conv2D, Dense


def lsuv_calibrate(
    network: Network,
    images: np.ndarray,
    target_std: float = 50.0,
    min_std: float = 1e-9,
) -> Dict[str, float]:
    """Rescale every Conv2D/Dense layer so its output std ~= target_std.

    Layers are visited in topological order, so each rescaling sees the
    already-calibrated upstream activations.  Returns the applied scale
    factor per layer.  The network is modified in place.
    """
    if target_std <= 0:
        raise ModelError("target_std must be positive")
    scales: Dict[str, float] = {}
    values: Dict[str, np.ndarray] = {INPUT: np.asarray(images, dtype=np.float64)}
    for layer in network.layers:
        arrays = [values[name] for name in layer.inputs]
        out = layer.forward(arrays)
        if isinstance(layer, (Conv2D, Dense)):
            std = float(out.std())
            factor = target_std / max(std, min_std)
            layer.weight = layer.weight * factor
            if layer.bias is not None:
                layer.bias = layer.bias * factor
            out = out * factor
            scales[layer.name] = factor
        values[layer.name] = out
    return scales
