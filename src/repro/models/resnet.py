"""ResNet-50 / ResNet-152 replicas (54 / 156 analyzed layers).

Bottleneck residual blocks (1x1 reduce, 3x3, 1x1 expand) with
projection shortcuts at each stage entry.  Counting convolutions plus
the final fully connected layer reproduces the paper's layer counts:

* ResNet-50:  1 + 3*(3+4+6+3) + 4 projections = 53 convs, + fc = 54
* ResNet-152: 1 + 3*(3+8+36+3) + 4 projections = 155 convs, + fc = 156

Without batch-norm training statistics, residual variance growth is
controlled by a reduced He gain on each branch's final convolution.
"""

from __future__ import annotations

from typing import List, Sequence

from ..config import DEFAULT_SEED
from ..nn import Network, NetworkBuilder

#: He gain on the last conv of each residual branch; keeps activation
#: variance growth modest across up-to-36-block stages.
_BRANCH_OUTPUT_GAIN = 0.35


def _bottleneck(
    b: NetworkBuilder,
    tag: str,
    source: str,
    width: int,
    out_channels: int,
    stride: int,
    project: bool,
    analyzed: List[str],
) -> str:
    """One bottleneck block; returns the post-ReLU output name."""
    b.conv(f"{tag}_a", width, 1, stride=stride, padding=0, source=source)
    b.conv(f"{tag}_b", width, 3, padding=1)
    branch = b.conv(
        f"{tag}_c", out_channels, 1, padding=0, relu=False,
        gain=_BRANCH_OUTPUT_GAIN,
    )
    analyzed += [f"{tag}_a", f"{tag}_b", f"{tag}_c"]
    if project:
        shortcut = b.conv(
            f"{tag}_proj", out_channels, 1, stride=stride, padding=0,
            relu=False, source=source,
        )
        analyzed.append(f"{tag}_proj")
    else:
        shortcut = source
    b.add_residual(f"{tag}_add", [shortcut, branch])
    return b.relu(f"{tag}_relu")


def _build_resnet(
    name: str,
    blocks_per_stage: Sequence[int],
    num_classes: int,
    seed: int,
) -> Network:
    b = NetworkBuilder(name, (3, 32, 32), seed=seed)
    analyzed: List[str] = ["conv1"]
    current = b.conv("conv1", 16, 3, padding=1)
    widths = [8, 12, 16, 24]
    out_channels = [32, 48, 64, 96]
    for stage, num_blocks in enumerate(blocks_per_stage, start=1):
        for block in range(num_blocks):
            tag = f"s{stage}b{block + 1}"
            stride = 2 if (stage > 1 and block == 0) else 1
            project = block == 0
            current = _bottleneck(
                b,
                tag,
                current,
                widths[stage - 1],
                out_channels[stage - 1],
                stride,
                project,
                analyzed,
            )
    b.global_pool("gap")
    b.dense("fc", num_classes)
    analyzed.append("fc")
    return b.build(analyzed_layers=analyzed)


def build_resnet50(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    return _build_resnet("resnet50", [3, 4, 6, 3], num_classes, seed)


def build_resnet152(num_classes: int = 16, seed: int = DEFAULT_SEED) -> Network:
    return _build_resnet("resnet152", [3, 8, 36, 3], num_classes, seed)
