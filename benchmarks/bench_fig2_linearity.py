"""Figure 2: cross-layer linearity of Delta_XK vs sigma_{Y_K->L}.

The paper validates Eq. 5 on VGG-19 and GoogleNet with per-layer linear
regressions whose predictions are "mostly with a < 5% error ... in the
worst case about 10%".  This benchmark regenerates the per-layer
(sigma, Delta) series and fit-quality summary for the same two network
families (their replicas).
"""

from __future__ import annotations

import pytest

from repro.experiments import make_context, run_fig2
from repro.pipeline import format_table

from conftest import FULL, bench_config

MODELS = ["vgg19", "googlenet"] if FULL else ["vgg19"]


@pytest.mark.parametrize("model", MODELS)
def test_fig2_linearity(benchmark, model):
    context = make_context(bench_config(model))

    def run():
        return run_fig2(context=context)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Fig. 2: linearity on {model} ===")
    print(format_table(result.summary_rows(), float_format="{:.4g}"))
    print(
        f"median max-rel-err {result.median_relative_error:.1%}  "
        f"worst {result.worst_relative_error:.1%} "
        f"(paper: <5% typical, ~10% worst)"
    )

    # Persist the raw (sigma, Delta) series for plotting.
    from pathlib import Path

    from repro.experiments import export_csv

    rows = [
        {"layer": s.layer, "sigma": sig, "delta": d}
        for s in result.series
        for sig, d in zip(s.sigmas, s.deltas)
    ]
    export_csv(rows, Path(__file__).parent / "results" / f"fig2_{model}.csv")

    assert result.median_relative_error < 0.30
    for series in result.series:
        assert series.lam > 0
        assert series.r_squared > 0.8
