"""Table II: AlexNet bitwidths optimized for two objectives at 1% drop.

Regenerates every row of the paper's Table II on the AlexNet replica:
per-layer #Input / #MAC / max|X_K|, the search-based baseline, and the
Opt_for_#Input / Opt_for_#MAC rows with their total-bit savings.  The
paper reports 15% input-bit and 9.5% MAC-bit savings; the substrate
replica must reproduce the *sign and rough scale* of those savings and
the xi redistribution pattern (bits move away from heavy layers).
"""

from __future__ import annotations

from repro.experiments import make_context, run_table2
from repro.pipeline import format_table

from conftest import bench_config


def test_table2_alexnet(benchmark):
    context = make_context(bench_config("alexnet"))

    def run():
        return run_table2(context=context, accuracy_drop=0.01)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Table II: AlexNet, 1% relative accuracy drop ===")
    print(format_table(result.rows()))
    print(f"sigma_YL = {result.sigma:.3f}  (paper: ~0.32)")
    print(
        f"#Input_bits: baseline {result.baseline_input_bits:.0f} -> "
        f"optimized {result.opt_input_total_input_bits:.0f} "
        f"({result.input_saving_percent:+.1f}%; paper: 15%)"
    )
    print(
        f"#MAC_bits:   baseline {result.baseline_mac_bits:.3g} -> "
        f"optimized {result.opt_mac_total_mac_bits:.3g} "
        f"({result.mac_saving_percent:+.1f}%; paper: 9.5%)"
    )
    print(f"xi (input): { {k: round(v, 2) for k, v in result.xi_input.items()} }")
    print(f"xi (mac):   { {k: round(v, 2) for k, v in result.xi_mac.items()} }")

    # Accuracy criterion must hold on the true quantized network.
    target = result.baseline_accuracy * 0.99
    assert result.opt_input_accuracy >= target
    assert result.opt_mac_accuracy >= target
    # xi must redistribute toward heavy-rho layers (who may spend error).
    heaviest_mac = max(result.num_macs, key=result.num_macs.get)
    lightest_mac = min(result.num_macs, key=result.num_macs.get)
    assert result.xi_mac[heaviest_mac] > result.xi_mac[lightest_mac]
