"""Distributed sweep scaling benchmark (ISSUE 10 acceptance evidence).

Measures the work-stealing executor (``repro.experiments.distributed``)
and writes ``BENCH_sweep_scale.json``:

* **coordination scaling** — a multi-cell grid of synthetic
  latency-bound cells (deterministic payloads that sleep; see
  ``SweepPlan.synthetic_seconds``) executed at 1, 2, and 4 workers.
  Claims, heartbeats, steals, and publication all go through the real
  on-disk protocol; only the cell body is simulated, so the series
  isolates the coordination layer and scales even on a single-core
  host.  Cells/sec at 2 workers must be at least ``--min-speedup``
  (default 1.7x) over 1 worker, and rows must be bit-identical across
  all worker counts.

* **real grid, cold and warm store** — a tiny real sweep executed at
  each worker count twice against one shared content-addressed cache:
  cold (fresh cache) and warm (populated cache), each in a fresh run
  directory so every cell actually executes.  Workers are real
  ``repro worker`` subprocesses (the production path).  Rows are
  asserted bit-identical to the serial scheduler; throughput is
  recorded without a scaling gate — real cells are CPU-bound, so
  cross-worker speedup is bounded by ``cpu_count`` (recorded in the
  payload for honest comparison across hosts).

The script exits non-zero on any identity mismatch or a synthetic
2-worker speedup below the floor.  ``make bench-sweep-scale`` runs the
full configuration; CI runs ``--smoke``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cache.leases import LeaseSettings  # noqa: E402
from repro.experiments import (  # noqa: E402
    DistributedSettings,
    ExperimentConfig,
    SweepSpec,
    run_sweep,
    run_sweep_distributed,
)
from repro.telemetry import build_manifest  # noqa: E402

SEED = 20190325

#: Fast lease timing: the benchmark has no crashed workers to wait out.
LEASE = LeaseSettings(ttl_seconds=30.0, poll_seconds=0.02)


def identity_rows(report) -> List[Dict[str, object]]:
    """Rows stripped to the cross-worker-count identity contract."""
    return [cell.identity_dict() for cell in report.cells]


def bench_synthetic(
    spec: SweepSpec,
    config: ExperimentConfig,
    worker_counts: List[int],
    synthetic_seconds: float,
    min_speedup: float,
) -> Dict[str, object]:
    """Latency-bound synthetic grid across worker counts."""
    series: Dict[str, Dict[str, float]] = {}
    rows: Dict[int, List[Dict[str, object]]] = {}
    for workers in worker_counts:
        with tempfile.TemporaryDirectory(
            prefix="repro-bench-scale-"
        ) as run_dir:
            start = time.perf_counter()
            report = run_sweep_distributed(
                spec,
                config,
                distribution=DistributedSettings(
                    workers=workers, spawn="thread"
                ),
                lease=LEASE,
                run_dir=run_dir,
                synthetic_seconds=synthetic_seconds,
            )
            elapsed = time.perf_counter() - start
        cells_per_sec = spec.num_cells / elapsed
        series[str(workers)] = {
            "seconds": elapsed,
            "cells_per_sec": cells_per_sec,
        }
        rows[workers] = identity_rows(report)
        print(
            f"  synthetic {workers}w: {spec.num_cells} cells in "
            f"{elapsed:.3f}s ({cells_per_sec:.2f} cells/sec)"
        )
    base = worker_counts[0]
    identical = all(rows[w] == rows[base] for w in worker_counts)
    speedup_2w = (
        series["2"]["cells_per_sec"] / series[str(base)]["cells_per_sec"]
        if "2" in series
        else 0.0
    )
    print(
        f"  2-worker speedup {speedup_2w:.2f}x (floor {min_speedup:.1f}x),"
        f" rows {'BIT-IDENTICAL' if identical else 'MISMATCH'}"
    )
    return {
        "num_cells": spec.num_cells,
        "synthetic_seconds": synthetic_seconds,
        "workers": series,
        "speedup_2w": speedup_2w,
        "min_speedup": min_speedup,
        "bit_identical": identical,
        "passed": identical and speedup_2w >= min_speedup,
    }


def bench_real(
    spec: SweepSpec,
    config: ExperimentConfig,
    worker_counts: List[int],
) -> Dict[str, object]:
    """Real cells, cold and warm store, subprocess workers."""
    serial = run_sweep(spec, config)
    serial_rows = identity_rows(serial)
    serial_cells_per_sec = spec.num_cells / serial.elapsed_seconds
    print(
        f"  serial: {spec.num_cells} cells in "
        f"{serial.elapsed_seconds:.3f}s "
        f"({serial_cells_per_sec:.2f} cells/sec)"
    )
    series: Dict[str, Dict[str, object]] = {}
    identical = True
    for workers in worker_counts:
        entry: Dict[str, object] = {}
        with tempfile.TemporaryDirectory(
            prefix="repro-bench-scale-cache-"
        ) as cache_dir:
            cached = replace(config, cache_dir=cache_dir)
            for phase in ("cold", "warm"):
                with tempfile.TemporaryDirectory(
                    prefix="repro-bench-scale-run-"
                ) as run_dir:
                    start = time.perf_counter()
                    report = run_sweep_distributed(
                        spec,
                        cached,
                        distribution=DistributedSettings(workers=workers),
                        lease=LEASE,
                        run_dir=run_dir,
                    )
                    elapsed = time.perf_counter() - start
                cells_per_sec = spec.num_cells / elapsed
                entry[phase] = {
                    "seconds": elapsed,
                    "cells_per_sec": cells_per_sec,
                }
                if identity_rows(report) != serial_rows:
                    identical = False
                print(
                    f"  real {workers}w/{phase}: {elapsed:.3f}s "
                    f"({cells_per_sec:.2f} cells/sec)"
                )
        series[str(workers)] = entry
    print(
        "  real rows vs serial: "
        + ("BIT-IDENTICAL" if identical else "MISMATCH")
    )
    return {
        "num_cells": spec.num_cells,
        "serial_seconds": serial.elapsed_seconds,
        "serial_cells_per_sec": serial_cells_per_sec,
        "workers": series,
        "bit_identical": identical,
        "passed": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts to measure",
    )
    parser.add_argument(
        "--synthetic-seconds",
        type=float,
        default=0.25,
        help="per-cell latency of the synthetic coordination grid",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.7,
        help="fail below this 2-worker synthetic cells/sec ratio",
    )
    parser.add_argument(
        "--skip-real",
        action="store_true",
        help="synthetic coordination series only",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration (1,2 workers, short cells)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_sweep_scale.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers = "1,2"
        args.synthetic_seconds = 0.15

    worker_counts = [int(w) for w in args.workers.split(",")]
    if 2 not in worker_counts:
        print("bench_sweep_scale: --workers must include 2", file=sys.stderr)
        return 2

    synthetic_spec = SweepSpec(
        models=("lenet", "alexnet"),
        accuracy_drops=(0.01, 0.05),
        objectives=("input", "mac"),
    )
    real_spec = SweepSpec(
        models=("lenet",),
        accuracy_drops=(0.01, 0.05),
        objectives=("input",),
    )
    config = ExperimentConfig(
        model="lenet",
        num_classes=8,
        train_count=96,
        test_count=48,
        profile_images=8,
        profile_points=4,
        search_trials=1,
        seed=SEED,
    )

    print("== coordination scaling (synthetic latency-bound cells) ==")
    synthetic = bench_synthetic(
        synthetic_spec,
        config,
        worker_counts,
        args.synthetic_seconds,
        args.min_speedup,
    )
    real: Dict[str, object] = {}
    if not args.skip_real:
        print("== real grid, cold and warm store (subprocess workers) ==")
        real = bench_real(real_spec, config, worker_counts)

    manifest = build_manifest(
        config={
            "benchmark": "sweep_scale",
            "workers": args.workers,
            "synthetic_seconds": args.synthetic_seconds,
            "min_speedup": args.min_speedup,
            "smoke": args.smoke,
        },
        seed=SEED,
    )
    payload = {
        "benchmark": "sweep_scale",
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "manifest": manifest.as_dict(),
        "synthetic": synthetic,
        "real": real,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if not synthetic["bit_identical"]:
        failures.append("synthetic rows differ across worker counts")
    if synthetic["speedup_2w"] < args.min_speedup:
        failures.append(
            f"2-worker speedup {synthetic['speedup_2w']:.2f}x below "
            f"{args.min_speedup:.1f}x floor"
        )
    if real and not real["bit_identical"]:
        failures.append("distributed real rows differ from serial")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
