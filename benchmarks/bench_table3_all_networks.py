"""Table III: effective bitwidths and savings across the model zoo.

Regenerates the paper's headline table: for each network and accuracy
constraint (1%, 5% relative top-1 drop), the searched weight bitwidth
``W``, the baseline effective bitwidths, both optimized allocations'
effective bitwidths, the bandwidth saving, and the MAC energy saving.

By default a four-network subset runs (one per structural family:
plain / NiN / fire / depthwise); ``REPRO_BENCH_FULL=1`` runs all eight
paper networks including ResNet-152.
"""

from __future__ import annotations

import pytest

from repro.experiments import average_savings, run_table3_row
from repro.pipeline import format_table

from conftest import bench_config, bench_models

_ROWS = []


@pytest.mark.parametrize("model", bench_models())
@pytest.mark.parametrize("drop", [0.01, 0.05])
def test_table3_row(benchmark, model, drop):
    def run():
        return run_table3_row(
            model, drop, config=bench_config(model), baseline="uniform"
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    print(f"\n=== Table III row: {model} @ {drop:.0%} drop ===")
    print(format_table([row.as_dict()]))

    # Accuracy criterion must never be violated (paper Sec. VI).
    target = row.baseline_accuracy * (1 - drop)
    assert row.opt_input_accuracy >= target
    assert row.opt_mac_accuracy >= target
    # Optimized-for-MAC must beat optimized-for-input on the MAC view
    # (up to 1-bit discretization slack).
    assert row.opt_mac_effective_mac <= row.opt_input_effective_mac + 1.0
    # Layer count must match the paper's column.
    from repro.models import PAPER_LAYER_COUNTS

    assert row.num_layers == PAPER_LAYER_COUNTS[model]


def test_table3_summary(benchmark):
    """The paper's Average row, over whichever rows ran."""

    def summarize():
        if not _ROWS:
            pytest.skip("no rows collected")
        return {
            drop: average_savings([r for r in _ROWS if r.accuracy_drop == drop])
            for drop in sorted({r.accuracy_drop for r in _ROWS})
        }

    summary = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print("\n=== Table III: full table ===")
    print(format_table([r.as_dict() for r in _ROWS]))

    from pathlib import Path

    from repro.experiments import export_csv

    export_csv(
        [r.as_dict() for r in _ROWS],
        Path(__file__).parent / "results" / "table3.csv",
    )
    for drop, averages in summary.items():
        print(
            f"Average @ {drop:.0%}: BW save "
            f"{averages['bw_save_percent']:.1f}% "
            f"(paper: {12.3 if drop == 0.01 else 8.8}%), energy save "
            f"{averages['energy_save_percent']:.1f}% "
            f"(paper: {23.8 if drop == 0.01 else 17.8}%)"
        )
