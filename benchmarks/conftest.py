"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures on the
synthetic substrate and prints the same rows/series the paper reports
(run with ``-s`` to see them).  Sizes are chosen so the default suite
finishes in minutes; set ``REPRO_BENCH_FULL=1`` to run every network
(including ResNet-152) at larger profiling sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.config import DEFAULT_SEED
from repro.experiments import ExperimentConfig
from repro.telemetry import build_manifest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Networks benchmarked by default (one of each structural family);
#: the full set matches the paper's Table III.
DEFAULT_MODELS = ["alexnet", "nin", "squeezenet", "mobilenet"]
FULL_MODELS = [
    "alexnet",
    "nin",
    "googlenet",
    "vgg19",
    "resnet50",
    "resnet152",
    "squeezenet",
    "mobilenet",
]


def bench_models():
    return FULL_MODELS if FULL else DEFAULT_MODELS


def bench_config(model: str) -> ExperimentConfig:
    """Per-model experiment sizes for benchmarking."""
    if FULL:
        return ExperimentConfig(
            model=model,
            train_count=512,
            test_count=384,
            profile_images=32,
            profile_points=10,
        )
    return ExperimentConfig(
        model=model,
        train_count=384,
        test_count=256,
        profile_images=24,
        profile_points=8,
    )


@pytest.fixture(scope="session")
def models():
    return bench_models()


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Embed the run-provenance manifest in ``--benchmark-json`` output.

    Every saved benchmark payload then records the config hash, git
    SHA, seed, and package versions that produced its numbers (see
    ``docs/observability.md``).
    """
    manifest = build_manifest(
        config={
            "benchmark_suite": "repro",
            "full": FULL,
            "models": bench_models(),
        },
        seed=DEFAULT_SEED,
    )
    output_json["manifest"] = manifest.as_dict()
