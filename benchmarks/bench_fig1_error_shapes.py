"""Figure 1 / Fig. 3-right: error-distribution shapes.

Uniform rounding error injected at a layer's input must become
near-Gaussian at the network output (the paper's Fig. 3 histogram has
std 0.99 and mean 7e-5 against a perfect N(0,1)).  This benchmark
measures the moments at each probe point.
"""

from __future__ import annotations

from repro.experiments import make_context, run_fig1
from repro.pipeline import format_table

from conftest import bench_config


def test_fig1_error_shapes(benchmark):
    context = make_context(bench_config("alexnet"))

    def run():
        return run_fig1(context=context, delta=1.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "probe": s.where,
            "mean": s.mean,
            "std": s.std,
            "excess_kurtosis": s.excess_kurtosis,
        }
        for s in result.shapes
    ]
    print(f"\n=== Fig. 1: error shapes (inject at {result.injected_layer}) ===")
    print(format_table(rows, float_format="{:.4g}"))
    print("uniform kurtosis = -1.2; Gaussian = 0")
    inp = result.shape("layer_input")
    out = result.shape("network_output")
    assert inp.excess_kurtosis < -0.8          # uniform at the input
    assert abs(out.excess_kurtosis) < 1.0      # near-Gaussian at layer L
    assert abs(out.mean) < 0.2 * out.std       # centred, like the paper's
