"""Ablation-campaign benchmark (ISSUE 6 acceptance evidence).

Measures the campaign engine (``repro ablate``) and writes
``BENCH_ablate.json``:

* **cold vs warm campaign** — the same component/scenario campaign run
  twice against one persistent cache directory.  Every cell builds a
  fresh optimizer, so only the content-addressed cache can make the
  second campaign fast; rows must be bit-identical across cold, warm,
  and a third no-cache campaign (caching never changes results).

* **chaos isolation** — the campaign re-run with one injected
  ``SimulatedCrash`` cell.  Exactly that cell must fail (classified,
  with a stable traceback digest) and every other row must stay
  bit-identical to the clean campaign.

* **importance ranking** — the report's component importance must be
  non-empty and sorted most-important-first; with a chaos cell present
  the crashed component must rank first (critical).

The script exits non-zero on any identity mismatch, a warm campaign
slower than cold, or an incomplete report — CI-compatible via
``--smoke``.  ``make bench-ablate`` runs the full configuration.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
import warnings
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import DegradedResultWarning  # noqa: E402
from repro.experiments import (  # noqa: E402
    AblationSpec,
    ExperimentConfig,
    run_ablation_campaign,
)
from repro.telemetry import build_manifest  # noqa: E402

SEED = 20190325


def row_fingerprint(row) -> Dict[str, Any]:
    """Everything in a row that must be identical across cache states."""
    payload = row.as_dict()
    for volatile in ("elapsed_seconds", "cache_counters", "resumed"):
        payload.pop(volatile, None)
    return payload


def campaign_rows(report) -> List[Dict[str, Any]]:
    return [row_fingerprint(row) for row in report.rows]


def timed_campaign(spec: AblationSpec, config: ExperimentConfig):
    start = time.perf_counter()
    with warnings.catch_warnings():
        # The fallback:forced cell legitimately degrades to equal-xi;
        # the warning is the cell's expected behaviour, not noise.
        warnings.simplefilter("ignore", DegradedResultWarning)
        report = run_ablation_campaign(spec, config)
    return report, time.perf_counter() - start


def bench_cache_sharing(
    spec: AblationSpec, config: ExperimentConfig
) -> Dict[str, Any]:
    """Cold/warm/no-cache campaigns; asserts row bit-identity."""
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-ablate-")
    try:
        cached_config = replace(config, cache_dir=cache_dir)
        runs: Dict[str, List[Dict[str, Any]]] = {}
        times: Dict[str, float] = {}
        counters: Dict[str, Dict[str, int]] = {}
        reports = {}
        for label, cfg in (
            ("cold", cached_config),
            ("warm", cached_config),
            ("no_cache", config),
        ):
            report, seconds = timed_campaign(spec, cfg)
            reports[label] = report
            runs[label] = campaign_rows(report)
            times[label] = seconds
            counters[label] = dict(report.cache_counters)
            print(
                f"  {label:<9} {seconds:8.3f}s  "
                f"({counters[label].get('hits', 0)} hits, "
                f"{counters[label].get('misses', 0)} misses)"
            )
        warm_speedup = times["cold"] / times["warm"]
        identical = runs["cold"] == runs["warm"] == runs["no_cache"]
        print(
            f"  warm campaign speedup {warm_speedup:.1f}x, rows "
            f"{'BIT-IDENTICAL' if identical else 'MISMATCH'}"
        )
        for line in reports["cold"].lines():
            print(f"  {line}")
        return {
            "num_cells": len(runs["cold"]),
            "seconds": times,
            "warm_speedup": warm_speedup,
            "cache_counters": counters,
            "bit_identical": identical,
            "warm_hits": counters["warm"].get("hits", 0),
            "importance": [
                entry.as_dict() for entry in reports["cold"].importance
            ],
            "scenarios": [
                entry.as_dict() for entry in reports["cold"].scenarios
            ],
            "rows": runs["cold"],
            "passed": identical and warm_speedup > 1.0,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def bench_chaos_isolation(
    spec: AblationSpec,
    config: ExperimentConfig,
    chaos_cell: str,
    clean_rows: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """One injected crash must fail one cell and disturb nothing else."""
    chaos_spec = replace(spec, chaos_cells=(chaos_cell,))
    report, seconds = timed_campaign(chaos_spec, config)
    failed = [row for row in report.rows if row.status == "failed"]
    one_failure = [row.cell_id for row in failed] == [chaos_cell]
    record = failed[0].failure.as_dict() if failed else None
    survivors = {
        row["cell_id"]: row
        for row in campaign_rows(report)
        if row["cell_id"] != chaos_cell
    }
    clean = {
        row["cell_id"]: row
        for row in clean_rows
        if row["cell_id"] != chaos_cell
    }
    isolated = survivors == clean
    ranked_first = bool(
        report.importance and report.importance[0].critical
    )
    print(
        f"  chaos cell {chaos_cell}: "
        f"{'1 failed row' if one_failure else 'WRONG failure set'}, "
        f"others {'BIT-IDENTICAL' if isolated else 'DISTURBED'}, "
        f"crashed component ranked "
        f"{'first (critical)' if ranked_first else 'WRONG'}"
    )
    if record:
        print(
            f"  classified: {record['error_class']} at "
            f"{record['stage']} ({record['traceback_digest']})"
        )
    return {
        "chaos_cell": chaos_cell,
        "seconds": seconds,
        "failure": record,
        "one_failure": one_failure,
        "others_bit_identical": isolated,
        "critical_ranked_first": ranked_first,
        "passed": one_failure and isolated and ranked_first,
    }


def importance_sorted(importance: List[Dict[str, Any]]) -> bool:
    scores = [entry["score"] for entry in importance]
    return all(a >= b for a, b in zip(scores, scores[1:]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", default="lenet")
    parser.add_argument("--drop", type=float, default=0.05)
    parser.add_argument("--objective", default="input")
    parser.add_argument(
        "--components",
        default="fallback,xi,kernels,cache,scheme",
        help="comma-separated matrix components ('all' for every one)",
    )
    parser.add_argument(
        "--scenarios",
        default="drop:loose,input:noise,weights:noise",
        help="comma-separated scenario names ('' for none)",
    )
    parser.add_argument(
        "--chaos-cell",
        default="component/xi:equal/lenet",
        help="cell id crashed in the isolation benchmark",
    )
    parser.add_argument("--train-count", type=int, default=192)
    parser.add_argument("--test-count", type=int, default=96)
    parser.add_argument("--profile-images", type=int, default=12)
    parser.add_argument("--profile-points", type=int, default=5)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration: 4-cell matrix, no scenarios",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_ablate.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.components = "fallback,xi"
        args.scenarios = ""
        args.train_count = 96
        args.test_count = 48
        args.profile_images = 8
        args.profile_points = 4

    config = ExperimentConfig(
        model="lenet",
        num_classes=8,
        train_count=args.train_count,
        test_count=args.test_count,
        profile_images=args.profile_images,
        profile_points=args.profile_points,
        seed=SEED,
    )
    components = (
        None
        if args.components == "all"
        else tuple(c.strip() for c in args.components.split(",") if c.strip())
    )
    scenarios = tuple(
        s.strip() for s in args.scenarios.split(",") if s.strip()
    )
    spec = AblationSpec(
        models=tuple(m.strip() for m in args.models.split(",")),
        accuracy_drop=args.drop,
        objective=args.objective,
        components=components,
        scenarios=scenarios,
    )

    print("== cold vs warm campaign (shared persistent cache) ==")
    sharing = bench_cache_sharing(spec, config)
    print("== chaos isolation ==")
    chaos = bench_chaos_isolation(
        spec, config, args.chaos_cell, sharing["rows"]
    )

    ranked = bool(sharing["importance"]) and importance_sorted(
        sharing["importance"]
    )

    manifest = build_manifest(
        config={
            "benchmark": "ablate",
            "models": args.models,
            "drop": args.drop,
            "objective": args.objective,
            "components": args.components,
            "scenarios": args.scenarios,
            "chaos_cell": args.chaos_cell,
            "train_count": args.train_count,
            "test_count": args.test_count,
            "profile_images": args.profile_images,
            "profile_points": args.profile_points,
            "smoke": args.smoke,
        },
        seed=SEED,
    )
    payload = {
        "benchmark": "ablate",
        "smoke": args.smoke,
        "manifest": manifest.as_dict(),
        "cache_sharing": sharing,
        "chaos_isolation": chaos,
        "importance_ranked": ranked,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if not sharing["bit_identical"]:
        failures.append("cold/warm/no-cache campaign rows differ")
    if sharing["warm_speedup"] <= 1.0:
        failures.append("warm campaign not faster than cold")
    if not chaos["passed"]:
        failures.append("chaos cell not isolated to one failed row")
    if not ranked:
        failures.append("importance ranking missing or unsorted")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
