"""Substrate micro-benchmarks: inference and profiling throughput.

Not a paper table — these keep the numpy engine honest (regressions in
forward-pass or partial-replay speed would silently inflate every other
benchmark) and quantify the speedup partial re-execution provides.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import uniform_noise_tap
from repro.experiments import make_context

from conftest import bench_config


@pytest.fixture(scope="module")
def context():
    return make_context(bench_config("alexnet"))


@pytest.fixture(scope="module")
def batch(context):
    return context.test.images[:32]


def test_forward_pass_throughput(benchmark, context, batch):
    """Full forward pass, batch of 32."""
    result = benchmark(lambda: context.network.forward(batch))
    assert result.shape[0] == 32


def test_run_all_throughput(benchmark, context, batch):
    """Forward pass keeping every activation (profiling mode)."""
    cache = benchmark(lambda: context.network.run_all(batch))
    assert cache.batch_size == 32


def test_partial_replay_faster_than_full(benchmark, context, batch):
    """forward_from at the last analyzed layer must beat a full pass."""
    network = context.network
    cache = network.run_all(batch)
    last = network.analyzed_layer_names[-1]
    rng = np.random.default_rng(0)
    tap = uniform_noise_tap(0.1, rng)

    result = benchmark(lambda: network.forward_from(cache, last, tap))
    assert result.shape[0] == 32


def test_quantized_forward_overhead(benchmark, context, batch):
    """Forward pass with fixed-point taps on every analyzed layer."""
    from repro.quant import BitwidthAllocation

    stats = context.optimizer.ordered_stats()
    allocation = BitwidthAllocation.uniform(stats, 8)
    taps = allocation.taps(context.network)
    result = benchmark(lambda: context.network.forward(batch, taps=taps))
    assert result.shape[0] == 32
