"""Figure 3: accuracy vs sigma_YL for both schemes, with corner bars.

Regenerates the left plot of the paper's Fig. 3 on the AlexNet replica:
the *equal_scheme* and *gaussian_approx* series must track each other,
and the xi corner-case error bars must stay small while accuracy loss
is small ("the variation is tolerable when the accuracy loss is below
5%").
"""

from __future__ import annotations

from repro.experiments import make_context, run_fig3
from repro.pipeline import format_table

from conftest import FULL, bench_config


def test_fig3_accuracy_vs_sigma(benchmark):
    context = make_context(bench_config("alexnet"))
    sigmas = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0]

    def run():
        return run_fig3(context=context, sigmas=sigmas, with_corners=FULL)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Fig. 3: accuracy vs sigma_YL (alexnet) ===")
    print(format_table(result.rows(), float_format="{:.3f}"))

    from pathlib import Path

    from repro.experiments import export_csv

    export_csv(
        result.rows(), Path(__file__).parent / "results" / "fig3_alexnet.csv"
    )
    print(
        f"final-layer error: mean={result.error_mean:.2g} "
        f"std={result.error_std:.3f} excess_kurtosis="
        f"{result.error_excess_kurtosis:.3f} (paper: ~N(0,1) shape)"
    )
    print(f"sigma at 1% drop: {result.target_sigma:.3f}")

    # The two schemes must track each other (Fig. 3's premise).
    for p in result.points:
        assert p.scheme_gap < 0.30, f"schemes diverged at sigma={p.sigma}"
    # Accuracy must be monotone non-increasing overall.
    accs = [p.gaussian_approx_accuracy for p in result.points]
    assert accs[0] > accs[-1]
    # Corner-case error bars small in the small-loss regime (FULL mode).
    if FULL:
        first = result.points[0]
        spread = first.corner_max_accuracy - first.corner_min_accuracy
        assert spread < 0.15
