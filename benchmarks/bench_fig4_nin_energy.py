"""Figure 4: NiN per-layer bitwidth / MAC-energy trade-off.

Regenerates the paper's Fig. 4 on the NiN replica: the energy optimizer
must *raise* the bitwidth of low-energy layers so it can *lower* the
power-hungry ones, producing a net MAC-energy saving (paper: 22.8%)
at the cost of some bandwidth (paper: 5.6% worse than baseline).
"""

from __future__ import annotations

from repro.experiments import make_context, run_fig4
from repro.pipeline import format_table

from conftest import bench_config


def test_fig4_nin_energy(benchmark):
    config = bench_config("nin")
    make_context(config)  # warm the shared context cache

    def run():
        return run_fig4(config=config, accuracy_drop=0.05)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Fig. 4: NiN per-layer energy optimization ===")
    print(format_table(result.rows, float_format="{:.0f}"))

    from repro.pipeline import grouped_bar_chart

    print("\nper-layer bitwidths (terminal edition of Fig. 4):")
    print(
        grouped_bar_chart(
            {
                str(r["layer"]): {
                    "baseline": float(r["baseline_bits"]),
                    "optimized": float(r["optimized_bits"]),
                }
                for r in result.rows
            }
        )
    )
    print(
        f"MAC energy: {result.baseline_energy_pj:.3g} -> "
        f"{result.optimized_energy_pj:.3g} pJ "
        f"({result.energy_save_percent:+.1f}%; paper: 22.8%)"
    )
    print(
        f"bandwidth change: {result.bandwidth_change_percent:+.1f}% "
        "(paper: +5.6%, i.e. worse)"
    )
    print(f"raised: {result.raised_layers}")
    print(f"lowered: {result.lowered_layers}")

    # The trade's direction must match the paper:
    assert result.energy_save_percent > 0, "energy optimization must save"
    assert result.raised_layers, "some cheap layers should gain bits"
    assert result.lowered_layers, "some hungry layers should lose bits"
    # Lowered layers must be the high-energy ones on average.
    energies = {
        str(r["layer"]): float(r["baseline_energy_pj"]) for r in result.rows
    }
    mean_lowered = sum(energies[l] for l in result.lowered_layers) / len(
        result.lowered_layers
    )
    mean_raised = sum(energies[l] for l in result.raised_layers) / len(
        result.raised_layers
    )
    assert mean_lowered > mean_raised
