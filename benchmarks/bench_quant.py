"""Quantized-runtime benchmark (ISSUE 8 acceptance evidence).

Runs the paper's 1%-drop Optimized-Input allocation *for real* on the
integer low-bit runtime (``repro.quant.runtime``) and writes
``BENCH_quant.json`` with, per model:

* **wall-clock** — float64 engine forward vs quantized forward over
  the evaluation set (best of ``--repeats`` timed passes each);
* **memory traffic** — measured bytes moved through the bit-packed
  activation buffers, cross-checked per layer against the analytic
  :func:`repro.hardware.bandwidth.layer_traffic_bytes` prediction.
  Any layer diverging more than ``--traffic-tolerance`` (default 10%)
  is flagged in the JSON and fails the run;
* **accuracy** — measured top-1 drop under true integer execution vs
  the user budget;
* **bit-identity** — reference vs fast backends (and numba when
  installed), packed vs unpacked activations, and batched
  ``forward_from_many`` vs sequential ``forward``, all compared with
  exact array equality.

The script exits non-zero on any bit-identity violation, traffic
divergence beyond tolerance, or accuracy-budget violation — CI runs it
at smoke sizes (``--smoke``: lenet only) for exactly that regression
check.  ``make bench-quant`` runs the full alexnet/nin configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import ExperimentConfig, make_context  # noqa: E402
from repro.hardware.bandwidth import layer_traffic_bytes  # noqa: E402
from repro.models.evaluate import relative_drop  # noqa: E402
from repro.quant.runtime import (  # noqa: E402
    QuantizedNetwork,
    RuntimeSpec,
    build_quantized_network,
    numba_available,
)

SEED = 20190325

#: Bits per element the float substrate moves (the engine is float64;
#: the paper's 32-bit baseline is also reported for comparison).
FLOAT_BITS = 64
PAPER_BASELINE_BITS = 32


def timed_best(fn, repeats: int) -> float:
    """Best-of-N wall-clock of a callable (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def forward_all(run_batch, images: np.ndarray, batch_size: int) -> None:
    for start in range(0, images.shape[0], batch_size):
        run_batch(images[start : start + batch_size])


def check_bit_identity(
    context, allocation, batch: np.ndarray
) -> Dict[str, bool]:
    """Exact-equality checks across backends, packing, and batching."""
    outputs = {}
    for backend in ("reference", "fast") + (
        ("numba",) if numba_available() else ()
    ):
        net = QuantizedNetwork(
            context.network, allocation, RuntimeSpec(backend=backend)
        )
        outputs[backend] = net.forward(batch)
    unpacked = QuantizedNetwork(
        context.network,
        allocation,
        RuntimeSpec(backend="fast", pack_activations=False),
    ).forward(batch)
    many_net = QuantizedNetwork(context.network, allocation, RuntimeSpec())
    half = batch.shape[0] // 2 or 1
    batches = [batch[:half], batch[half : 2 * half]]
    stacked = many_net.forward_from_many(batches)
    sequential = np.stack([many_net.forward(b) for b in batches])
    checks = {
        "backends": all(
            np.array_equal(outputs["reference"], out)
            for out in outputs.values()
        ),
        "packed_vs_unpacked": np.array_equal(outputs["fast"], unpacked),
        "batched_vs_sequential": np.array_equal(stacked, sequential),
    }
    if numba_available():
        checks["numba_present"] = True
    return checks


def bench_model(
    config: ExperimentConfig,
    drop: float,
    repeats: int,
    batch_size: int,
    traffic_tolerance: float,
) -> Dict[str, object]:
    context = make_context(config)
    outcome = context.optimizer.optimize("input", accuracy_drop=drop)
    allocation = outcome.result.allocation
    stats = context.optimizer.stats()

    quantized = build_quantized_network(
        context.network, allocation, RuntimeSpec()
    )
    images = context.test.images
    labels = context.test.labels

    fp_seconds = timed_best(
        lambda: forward_all(
            lambda b: context.network.forward(b), images, batch_size
        ),
        repeats,
    )
    quantized.reset_traffic()
    q_seconds = timed_best(
        lambda: forward_all(lambda b: quantized.forward(b), images, batch_size),
        repeats,
    )

    # Accuracy under true integer execution.
    baseline = context.optimizer.baseline_accuracy()
    predictions = quantized.predict(images, batch_size=batch_size)
    measured_accuracy = float(np.mean(predictions == labels))
    measured_drop = relative_drop(baseline, measured_accuracy)

    # Measured vs analytic traffic, per layer.
    measured_bits = quantized.measured_input_bits()
    analytic_bytes = layer_traffic_bytes(stats, allocation)
    layers: List[Dict[str, object]] = []
    divergent: List[str] = []
    for entry in allocation:
        measured = measured_bits[entry.name] / 8.0
        analytic = analytic_bytes[entry.name]
        divergence = abs(measured - analytic) / analytic if analytic else 0.0
        flagged = divergence > traffic_tolerance
        if flagged:
            divergent.append(entry.name)
        layers.append(
            {
                "layer": entry.name,
                "bits": entry.total_bits,
                "analytic_bytes": analytic,
                "measured_bytes": measured,
                "divergence": divergence,
                "flagged": flagged,
            }
        )
    total_inputs = sum(stats[n].num_inputs for n in allocation.names)
    measured_total_bits = sum(measured_bits.values())
    effective_bits = allocation.effective_bitwidth(
        {n: stats[n].num_inputs for n in allocation.names}
    )
    fp_bytes = total_inputs * FLOAT_BITS / 8.0
    paper_baseline_bytes = total_inputs * PAPER_BASELINE_BITS / 8.0
    quant_bytes = measured_total_bits / 8.0

    identity = check_bit_identity(context, allocation, images[:batch_size])

    passed = (
        all(identity.values())
        and not divergent
        and measured_drop <= drop + 1e-9
    )
    result: Dict[str, object] = {
        "model": config.model,
        "accuracy_drop_budget": drop,
        "bitwidths": {a.name: a.total_bits for a in allocation},
        "effective_bitwidth": effective_bits,
        "seconds": {"fp64_engine": fp_seconds, "quantized": q_seconds},
        "traffic_bytes_per_image": {
            "fp64_engine": fp_bytes,
            "paper_fp32_baseline": paper_baseline_bytes,
            "quantized_measured": quant_bytes,
            "reduction_vs_fp32": (
                (paper_baseline_bytes - quant_bytes) / paper_baseline_bytes
            ),
            "consistent_with_mean_bitwidth": abs(
                quant_bytes * 8.0 / total_inputs - effective_bits
            )
            <= traffic_tolerance * effective_bits,
        },
        "layers": layers,
        "divergent_layers": divergent,
        "packed_weight_bytes": quantized.packed_weight_nbytes(),
        "accuracy": {
            "baseline": baseline,
            "simulated": outcome.validated_accuracy,
            "measured": measured_accuracy,
            "measured_drop": measured_drop,
            "budget_met": measured_drop <= drop + 1e-9,
        },
        "bit_identity": identity,
        "passed": passed,
    }
    print(
        f"  {config.model}: fp64 {fp_seconds:.3f}s  quantized "
        f"{q_seconds:.3f}s  traffic {quant_bytes:.0f} B/img "
        f"(fp32 baseline {paper_baseline_bytes:.0f} B/img, "
        f"{result['traffic_bytes_per_image']['reduction_vs_fp32']:.0%} "
        f"saved)  drop {measured_drop:.2%}/{drop:.2%}  "
        f"{'OK' if passed else 'FAIL'}"
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models", default="alexnet,nin", help="comma-separated zoo models"
    )
    parser.add_argument("--drop", type=float, default=0.01)
    parser.add_argument("--train-count", type=int, default=256)
    parser.add_argument("--test-count", type=int, default=128)
    parser.add_argument("--profile-images", type=int, default=16)
    parser.add_argument("--profile-points", type=int, default=6)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed passes (best-of)"
    )
    parser.add_argument(
        "--traffic-tolerance",
        type=float,
        default=0.10,
        help="max relative measured-vs-analytic traffic divergence",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration: lenet only",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_quant.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.models = "lenet"
        args.train_count = 96
        args.test_count = 48
        args.profile_images = 8
        args.profile_points = 4
        args.repeats = 2

    print("== quantized runtime vs fp64 engine ==")
    results = []
    for model in (m.strip() for m in args.models.split(",")):
        config = ExperimentConfig(
            model=model,
            num_classes=8,
            train_count=args.train_count,
            test_count=args.test_count,
            profile_images=args.profile_images,
            profile_points=args.profile_points,
            seed=SEED,
        )
        results.append(
            bench_model(
                config,
                args.drop,
                args.repeats,
                args.batch_size,
                args.traffic_tolerance,
            )
        )

    passed = all(r["passed"] for r in results)
    payload = {
        "benchmark": "quantized-runtime",
        "traffic_tolerance": args.traffic_tolerance,
        "numba_available": numba_available(),
        "models": results,
        "passed": passed,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"results written to {args.output}")
    if not passed:
        print("FAILURE: see flagged layers / identity checks above")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
