"""Section VI-A: analytic-method cost vs dynamic-search cost.

The paper's cost claim: profiling takes minutes, the sigma binary
search a bounded number of accuracy evaluations, and "changing the user
constraints only requires re-running the last optimization step" —
whereas dynamic search re-tests the full network at every tweak.
"""

from __future__ import annotations

from repro.experiments import make_context, run_cost_comparison

from conftest import bench_config


def test_cost_comparison(benchmark):
    context = make_context(bench_config("alexnet"))

    def run():
        return run_cost_comparison(context=context, accuracy_drop=0.05)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Sec. VI-A: cost comparison (alexnet) ===")
    print(
        f"analytic: profile {result.analytic_profile_seconds:.2f}s + "
        f"sigma search {result.analytic_search_seconds:.2f}s "
        f"({result.analytic_accuracy_evaluations} accuracy evals) + "
        f"optimize {result.analytic_optimize_seconds:.3f}s"
    )
    print(
        f"search:   {result.search_seconds:.2f}s, "
        f"{result.search_accuracy_evaluations} accuracy evals"
    )
    print(
        f"re-optimize for a new objective: {result.reoptimize_seconds:.3f}s"
    )
    print(f"evaluation ratio (search / analytic): {result.evaluation_ratio:.1f}x")

    assert result.evaluation_ratio > 1.0
    # Re-running the last step must be orders cheaper than starting over.
    assert result.reoptimize_seconds < 0.5 * result.analytic_total_seconds
