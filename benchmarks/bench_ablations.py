"""Ablation benchmarks for the design decisions DESIGN.md calls out.

Each ablation isolates one mechanism of the method and reports its
contribution on the substrate replica.
"""

from __future__ import annotations

from repro.experiments import (
    make_context,
    run_additivity_check,
    run_negative_fraction_ablation,
    run_profile_stability,
    run_scheme_agreement,
    run_xi_ablation,
)

from conftest import bench_config


def _context():
    return make_context(bench_config("nin"))


def test_ablation_xi_vs_equal_scheme(benchmark):
    """How much does optimizing xi buy over the equal scheme?"""
    context = _context()

    def run():
        return run_xi_ablation(context=context, objective="mac")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: xi optimization vs equal scheme ({result.model}, "
        f"{result.objective}) ===\n"
        f"equal: {result.equal_cost_bits:.3g} weighted bits, optimized: "
        f"{result.optimized_cost_bits:.3g} "
        f"({result.improvement_percent:+.1f}%)"
    )
    # Optimized must not be worse beyond 1-bit discretization noise.
    assert result.optimized_cost_bits <= result.equal_cost_bits * 1.05


def test_ablation_scheme_agreement(benchmark):
    """Scheme 1 and Scheme 2 must find similar sigma budgets (Fig. 3)."""
    context = _context()

    def run():
        return run_scheme_agreement(context=context, accuracy_drop=0.05)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: scheme agreement ({result.model}) ===\n"
        f"scheme1 sigma={result.sigma_scheme1:.3f}, "
        f"scheme2 sigma={result.sigma_scheme2:.3f}, "
        f"relative gap {result.relative_gap:.1%}"
    )
    assert result.relative_gap < 0.8


def test_ablation_profile_stability(benchmark):
    """Paper Sec. V-A: 50-200 images produce stable regressions.

    On the substrate, lambda estimates across profiling sizes must stay
    within a modest relative spread.
    """
    context = _context()

    def run():
        return run_profile_stability(
            context=context, image_counts=(12, 24, 48), point_counts=(8,)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: profiling sample-size stability ({result.model}) "
        f"===\nworst lambda spread across settings: {result.worst_spread:.1%}"
    )
    assert result.worst_spread < 0.5


def test_ablation_negative_fraction_bits(benchmark):
    """Paper Sec. II-A integer-bit dropping: never hurts, often helps."""
    context = _context()

    def run():
        return run_negative_fraction_ablation(
            context=context, objective="input", accuracy_drop=0.05
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: negative-F (integer-bit dropping) ===\n"
        f"with dropping: {result.cost_with_dropping:.3g} bits, without: "
        f"{result.cost_without_dropping:.3g} bits "
        f"({result.saving_percent:+.1f}%)"
    )
    assert result.cost_with_dropping <= result.cost_without_dropping


def test_ablation_variance_additivity(benchmark):
    """Eq. 6: joint-injection sigma_YL matches the root-sum-square."""
    context = _context()

    def run():
        return run_additivity_check(context=context, sigma=0.5)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: Eq. 6 variance additivity ({result.model}) ===\n"
        f"target sigma {result.sigma_target:.3f}, measured "
        f"{result.sigma_measured:.3f} "
        f"(relative error {result.relative_error:.1%})"
    )
    assert result.relative_error < 0.35


def test_ablation_channelwise_refinement(benchmark):
    """Finer granularity than the paper: per-channel integer widths on
    top of the per-layer allocation (same Delta, smaller words)."""
    from repro.experiments import run_channelwise_ablation

    context = _context()

    def run():
        return run_channelwise_ablation(context=context, objective="input")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: channelwise integer widths ({result.model}) ===\n"
        f"layerwise {result.layerwise_effective_bits:.2f} effective bits -> "
        f"channelwise {result.channelwise_effective_bits:.2f} "
        f"({result.saving_percent:+.1f}%), accuracy "
        f"{result.layerwise_accuracy:.3f} -> {result.channelwise_accuracy:.3f}"
    )
    assert result.channelwise_effective_bits <= result.layerwise_effective_bits
    assert result.channelwise_accuracy >= result.layerwise_accuracy - 0.03


def test_ablation_lambda_predicts_search_minima(benchmark):
    """Cross-validation of the analytic model against dynamic search:
    layers the analytic method says can tolerate larger Deltas (bigger
    lambda_K, fewer predicted bits) should also receive fewer bits from
    the independent Judd-style per-layer search.  A positive rank
    correlation ties the two methods' sensitivity orderings together."""
    from scipy import stats as scistats

    from repro.analysis import deltas_for_sigma
    from repro.baselines import stripes_search
    from repro.quant import BitwidthAllocation

    context = _context()
    optimizer = context.optimizer

    def run():
        return stripes_search(
            context.network,
            context.test,
            optimizer.ordered_stats(),
            optimizer.baseline_accuracy(),
            0.05,
        )

    search = benchmark.pedantic(run, rounds=1, iterations=1)
    sigma = optimizer.sigma_for_drop(0.05).sigma
    profiles = optimizer.profiles_for_drop(0.05)
    deltas = deltas_for_sigma(profiles, sigma)
    predicted = BitwidthAllocation.from_deltas(
        optimizer.ordered_stats(), deltas
    ).bitwidths()
    names = list(predicted)
    analytic_bits = [predicted[n] for n in names]
    search_bits = [search.per_layer_minima[n] for n in names]
    rho, pvalue = scistats.spearmanr(analytic_bits, search_bits)
    print(
        "\n=== Ablation: analytic bits vs per-layer search minima "
        f"({context.config.model}) ===\n"
        f"analytic: {analytic_bits}\nsearch:   {search_bits}\n"
        f"Spearman rho = {rho:.2f} (p = {pvalue:.3f})"
    )
    # The two methods probe different operating points (the search's
    # zero-degradation criterion vs the analytic 5% budget), and the
    # narrow bit ranges make ranks noisy — so assert only that the
    # orderings are not strongly contradictory, and that the analytic
    # assignment needs no more bits overall than the search minima
    # (which must later be inflated by the joint repair anyway).
    assert rho > -0.5, "orderings strongly contradict"
    assert sum(analytic_bits) <= sum(search_bits) + len(names)


def test_ablation_percentile_clipping(benchmark):
    """Saturating integer ranges: cover the 99.5th percentile instead of
    the absolute max; outliers clip, every value gets narrower words."""
    from repro.experiments import run_clipping_ablation

    context = _context()

    def run():
        return run_clipping_ablation(context=context, percentile=99.5)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: percentile clipping at {result.percentile} "
        f"({result.model}) ===\n"
        f"effective bits {result.unclipped_effective_bits:.2f} -> "
        f"{result.clipped_effective_bits:.2f} "
        f"({result.saving_percent:+.1f}%), accuracy "
        f"{result.unclipped_accuracy:.3f} -> {result.clipped_accuracy:.3f}"
    )
    assert result.clipped_effective_bits <= result.unclipped_effective_bits
    assert result.clipped_accuracy >= result.unclipped_accuracy - 0.05


def test_ablation_budget_audit(benchmark):
    """Eq. 6/7 audit under true rounding: per-layer and joint measured
    output errors vs the sigma budget the allocation was derived from."""
    from repro.experiments import run_budget_audit
    from repro.pipeline import format_table

    context = _context()

    def run():
        return run_budget_audit(context=context)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Ablation: error-budget audit ({context.config.model}) ===")
    print(format_table(result.rows(), float_format="{:.4f}"))
    print(
        f"joint: budget {result.joint_budget_sigma:.4f}, measured "
        f"{result.joint_measured_sigma:.4f} "
        f"(utilization {result.joint_utilization:.0%}); Eq.6 additivity "
        f"error {result.additivity_error:.1%}"
    )
    # Safety direction: true rounding must not blow past the budget.
    assert result.joint_utilization < 1.3
    assert result.additivity_error < 0.5
