"""Search-overfitting demonstration (paper Sec. I criticism).

"This approach will likely over-fit the precision result to the testing
data set."  The greedy joint search accepts any reduction that passes
on its search set; evaluated on held-out data, its allocation can
violate the accuracy constraint, while the analytic allocation keeps
a safety margin.
"""

from __future__ import annotations

from repro.baselines import greedy_coordinate_search
from repro.experiments import make_context
from repro.models import top1_accuracy

from conftest import bench_config


def test_search_overfits_its_test_set(benchmark):
    context = make_context(bench_config("nin"))
    optimizer = context.optimizer
    stats = optimizer.ordered_stats()
    search_set = context.test.subset(96)
    base_acc = top1_accuracy(context.network, search_set)
    holdout = context.train.subset(192)

    def run():
        return greedy_coordinate_search(
            context.network,
            search_set,
            stats,
            base_acc,
            0.05,
            holdout=holdout,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = optimizer.optimize("input", accuracy_drop=0.05)
    analytic_holdout = top1_accuracy(
        context.network, holdout, taps=analytic.result.allocation.taps()
    )
    holdout_base = top1_accuracy(context.network, holdout)
    print("\n=== Overfitting: greedy search vs analytic (nin) ===")
    print(
        f"greedy:   search-set acc {result.search_accuracy:.3f} "
        f"(target {base_acc * 0.95:.3f}), "
        f"holdout acc {result.holdout_accuracy:.3f} "
        f"(holdout target {holdout_base * 0.95:.3f})"
    )
    print(
        f"analytic: holdout acc {analytic_holdout:.3f}, "
        f"{result.evaluations} vs "
        f"{analytic.sigma_result.num_evaluations} accuracy evaluations"
    )
    greedy_margin = result.holdout_accuracy - holdout_base * 0.95
    analytic_margin = analytic_holdout - holdout_base * 0.95
    print(
        f"holdout margin: greedy {greedy_margin:+.3f}, "
        f"analytic {analytic_margin:+.3f}"
    )
    # The analytic method must generalize at least as safely.
    assert analytic_margin >= greedy_margin - 0.01
    assert analytic_margin >= -0.005
