"""Persistent-cache benchmark (ISSUE 5 acceptance evidence).

Measures the two effects of the content-addressed result cache
(``repro.cache``) and writes ``BENCH_cache.json``:

* **cold vs warm pipeline** — the same ``optimize()`` run twice
  against one cache directory, each time through a *fresh*
  ``PrecisionOptimizer`` (no in-process memo can help).  The warm run
  must be at least ``--min-warm-speedup`` (default 5x) faster and
  bit-identical: bitwidths, xi, sigma, and accuracies are compared
  with exact float equality.  A third run with the cache disabled
  re-checks that caching never changes results.

* **scheduler vs naive cold sweep** — a Table-III-style grid executed
  by ``repro.experiments.run_sweep`` (one optimizer per model, cells
  sharing profiles/stats/baseline/sigma memos, persistent cache on)
  against the naive loop a user would write: a fresh no-cache
  optimizer per cell.  Both sides share the pre-built pretrained
  contexts, so the comparison isolates scheduling, not model setup.
  Cell results must match exactly.

The script exits non-zero on any identity mismatch or a warm speedup
below the floor — CI runs it at smoke sizes for exactly that
regression check.  ``make bench-cache`` runs the full configuration.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    SweepSpec,
    make_context,
    run_sweep,
)
from repro.pipeline import PrecisionOptimizer  # noqa: E402
from repro.telemetry import build_manifest  # noqa: E402

SEED = 20190325


def fresh_optimizer(context, cache: Optional[str]) -> PrecisionOptimizer:
    """A brand-new optimizer over a context's network/dataset.

    Fresh per call so no in-process memo (profiles, stats, sigma
    evaluations) survives between timed runs — only the persistent
    cache can make the second run fast.
    """
    config = context.config
    return PrecisionOptimizer(
        context.network,
        context.test,
        profile_settings=config.profile_settings(),
        search_settings=config.search_settings(),
        scheme=config.scheme,
        parallel=config.parallel_settings(),
        cache=cache,
    )


def outcome_fingerprint(outcome) -> Dict[str, object]:
    """Everything that must be bit-identical across cache states."""
    return {
        "bitwidths": dict(outcome.bitwidths),
        "xi": dict(outcome.result.xi),
        "deltas": dict(outcome.result.deltas),
        "sigma": outcome.result.sigma,
        "achieved_accuracy": outcome.sigma_result.achieved_accuracy,
        "baseline_accuracy": outcome.baseline_accuracy,
        "validated_accuracy": outcome.validated_accuracy,
        "degraded": outcome.degraded,
    }


def bench_cold_warm(
    config: ExperimentConfig,
    drop: float,
    objective: str,
    min_warm_speedup: float,
) -> Dict[str, object]:
    """Cold/warm/no-cache runs of one pipeline; asserts bit-identity."""
    context = make_context(replace(config, model=config.model))
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        runs: Dict[str, Dict[str, object]] = {}
        times: Dict[str, float] = {}
        for label, cache in (
            ("cold", cache_dir),
            ("warm", cache_dir),
            ("no_cache", None),
        ):
            optimizer = fresh_optimizer(context, cache)
            start = time.perf_counter()
            outcome = optimizer.optimize(objective, accuracy_drop=drop)
            times[label] = time.perf_counter() - start
            runs[label] = outcome_fingerprint(outcome)
            counters = (
                optimizer.cache.counters.as_dict()
                if optimizer.cache is not None
                else {}
            )
            print(
                f"  {config.model}/{label:<9} {times[label]:8.3f}s"
                + (
                    f"  ({counters.get('hits', 0)} hits, "
                    f"{counters.get('misses', 0)} misses)"
                    if counters
                    else ""
                )
            )
        warm_speedup = times["cold"] / times["warm"]
        identical = runs["cold"] == runs["warm"] == runs["no_cache"]
        print(
            f"  {config.model}: warm speedup {warm_speedup:.1f}x "
            f"(floor {min_warm_speedup:.0f}x), results "
            f"{'BIT-IDENTICAL' if identical else 'MISMATCH'}"
        )
        return {
            "model": config.model,
            "objective": objective,
            "accuracy_drop": drop,
            "seconds": times,
            "warm_speedup": warm_speedup,
            "min_warm_speedup": min_warm_speedup,
            "bit_identical": identical,
            "passed": identical and warm_speedup >= min_warm_speedup,
            "fingerprint": runs["cold"],
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def cell_fingerprint(cell) -> Dict[str, object]:
    return {
        "model": cell.model,
        "drop": cell.accuracy_drop,
        "objective": cell.objective,
        "sigma": cell.sigma,
        "bitwidths": cell.bitwidths,
        "baseline_accuracy": cell.baseline_accuracy,
        "validated_accuracy": cell.validated_accuracy,
    }


def bench_sweep(config: ExperimentConfig, spec: SweepSpec) -> Dict[str, object]:
    """Cold incremental sweep vs the naive fresh-pipeline-per-cell loop."""
    # Pre-build every model's pretrained context so neither side is
    # charged for model setup; run_sweep reuses these via the context
    # cache (its configs match exactly).
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-sweep-")
    sweep_config = replace(config, cache_dir=cache_dir)
    contexts = {
        model: make_context(replace(sweep_config, model=model))
        for model in spec.models
    }
    try:
        naive: List[Dict[str, object]] = []
        naive_start = time.perf_counter()
        for model, drop, objective in spec.cells():
            optimizer = fresh_optimizer(contexts[model], cache=None)
            outcome = optimizer.optimize(objective, accuracy_drop=drop)
            naive.append(
                {
                    "model": model,
                    "drop": drop,
                    "objective": objective,
                    "sigma": outcome.result.sigma,
                    "bitwidths": dict(outcome.bitwidths),
                    "baseline_accuracy": outcome.baseline_accuracy,
                    "validated_accuracy": outcome.validated_accuracy,
                }
            )
        naive_seconds = time.perf_counter() - naive_start
        print(f"  naive loop: {len(naive)} cells in {naive_seconds:.3f}s")

        report = run_sweep(spec, sweep_config)
        sweep_seconds = report.elapsed_seconds
        for line in report.lines():
            print(f"  {line}")

        scheduled = [cell_fingerprint(cell) for cell in report.cells]
        identical = scheduled == naive
        speedup = naive_seconds / sweep_seconds
        print(
            f"  sweep speedup vs naive {speedup:.2f}x, cells "
            f"{'BIT-IDENTICAL' if identical else 'MISMATCH'}"
        )
        return {
            "models": list(spec.models),
            "accuracy_drops": list(spec.accuracy_drops),
            "objectives": list(spec.objectives),
            "num_cells": spec.num_cells,
            "naive_seconds": naive_seconds,
            "sweep_seconds": sweep_seconds,
            "sweep_speedup": speedup,
            "cache_counters": report.cache_counters,
            "bit_identical": identical,
            "passed": identical and speedup > 1.0,
            "cells": scheduled,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="alexnet", help="cold/warm model")
    parser.add_argument(
        "--sweep-models",
        default="lenet,alexnet",
        help="comma-separated models for the sweep comparison",
    )
    parser.add_argument("--drops", default="0.01,0.05")
    parser.add_argument("--objectives", default="input,mac")
    parser.add_argument("--train-count", type=int, default=256)
    parser.add_argument("--test-count", type=int, default=128)
    parser.add_argument("--profile-images", type=int, default=16)
    parser.add_argument("--profile-points", type=int, default=6)
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=5.0,
        help="fail below this cold/warm ratio",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration: lenet only, small grid",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_cache.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.model = "lenet"
        args.sweep_models = "lenet"
        args.objectives = "input"
        args.train_count = 96
        args.test_count = 48
        args.profile_images = 8
        args.profile_points = 4

    config = ExperimentConfig(
        model=args.model,
        num_classes=8,
        train_count=args.train_count,
        test_count=args.test_count,
        profile_images=args.profile_images,
        profile_points=args.profile_points,
        seed=SEED,
    )
    drops = tuple(float(d) for d in args.drops.split(","))
    objectives = tuple(o.strip() for o in args.objectives.split(","))

    print("== cold vs warm pipeline ==")
    cold_warm = bench_cold_warm(
        config, drops[0], objectives[0], args.min_warm_speedup
    )
    print("== scheduler vs naive cold sweep ==")
    spec = SweepSpec(
        models=tuple(m.strip() for m in args.sweep_models.split(",")),
        accuracy_drops=drops,
        objectives=objectives,
    )
    sweep = bench_sweep(config, spec)

    manifest = build_manifest(
        config={
            "benchmark": "cache_sweep",
            "model": args.model,
            "sweep_models": args.sweep_models,
            "drops": args.drops,
            "objectives": args.objectives,
            "train_count": args.train_count,
            "test_count": args.test_count,
            "profile_images": args.profile_images,
            "profile_points": args.profile_points,
            "min_warm_speedup": args.min_warm_speedup,
            "smoke": args.smoke,
        },
        seed=SEED,
    )
    payload = {
        "benchmark": "cache_sweep",
        "smoke": args.smoke,
        "manifest": manifest.as_dict(),
        "cold_warm": cold_warm,
        "sweep": sweep,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if not cold_warm["bit_identical"]:
        failures.append("cold/warm/no-cache results differ")
    if cold_warm["warm_speedup"] < args.min_warm_speedup:
        failures.append(
            f"warm speedup {cold_warm['warm_speedup']:.1f}x below "
            f"{args.min_warm_speedup:.0f}x floor"
        )
    if not sweep["bit_identical"]:
        failures.append("sweep cells differ from the naive loop")
    if sweep["sweep_speedup"] <= 1.0:
        failures.append("incremental sweep not faster than naive loop")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
