"""Bits-vs-accuracy-drop trade curve (the curve Table III samples).

Not a single paper figure, but the continuous object behind the
1%/5% columns of Table III: as the user relaxes the accuracy
constraint, the effective bitwidth must fall monotonically, and the
sigma budget must grow.  The curve also demonstrates the paper's
workflow claim — after profiling once, each additional constraint
costs only a sigma search plus a cheap re-optimization.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import export_csv, make_context, run_drop_sweep
from repro.pipeline import format_table

from conftest import bench_config


def test_drop_sweep(benchmark):
    context = make_context(bench_config("alexnet"))

    def run():
        return run_drop_sweep(
            context=context,
            objective="input",
            accuracy_drops=(0.01, 0.02, 0.05, 0.10, 0.20),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Trade curve: bits vs accuracy drop ({result.model}) ===")
    print(format_table(result.rows(), float_format="{:.3f}"))
    export_csv(
        result.rows(),
        Path(__file__).parent / "results" / f"drop_sweep_{result.model}.csv",
    )

    sigmas = [p.sigma for p in result.points]
    assert all(s1 <= s2 + 1e-9 for s1, s2 in zip(sigmas, sigmas[1:])), (
        "sigma budget must grow with the allowed drop"
    )
    assert result.is_monotone, "effective bits must not grow with the drop"
    for p in result.points:
        assert p.meets_constraint
