"""Benchmarks for the repo's extensions beyond the paper's tables.

1. Per-layer weight bitwidths (Loom-style, Sec. V-E extension) and the
   speedup they unlock on a weight-and-activation-serial engine.
2. System-level energy (MAC + SRAM/DRAM traffic): does bandwidth or
   MAC optimization win once data movement is priced in?
3. The second-order error term the paper's Eq. 2 drops: measured
   contribution across operand error sizes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import cross_term_sweep
from repro.baselines import smallest_uniform_bitwidth
from repro.experiments import make_context
from repro.hardware import LoomAccelerator, system_energy
from repro.pipeline import format_table
from repro.weights import search_per_layer_weight_bits

from conftest import bench_config


def test_per_layer_weight_search_and_loom(benchmark):
    context = make_context(bench_config("squeezenet"))
    optimizer = context.optimizer
    drop = 0.05
    out_mac = optimizer.optimize("mac", accuracy_drop=drop)
    stats = optimizer.stats()

    def run():
        return search_per_layer_weight_bits(
            context.network,
            context.test,
            optimizer.baseline_accuracy(),
            drop,
            input_taps=out_mac.result.allocation.taps(context.network),
        )

    weights = benchmark.pedantic(run, rounds=1, iterations=1)
    loom = LoomAccelerator()
    uniform16 = {name: 16 for name in weights.bits}
    speedup_wide = loom.speedup(stats, out_mac.result.allocation, uniform16)
    speedup_searched = loom.speedup(
        stats, out_mac.result.allocation, weights.bits
    )
    print("\n=== Extension: per-layer weight bitwidths (squeezenet) ===")
    print(
        f"weights span {min(weights.bits.values())}.."
        f"{max(weights.bits.values())} bits; joint accuracy "
        f"{weights.accuracy:.3f}; {weights.evaluations} evaluations"
    )
    print(
        f"Loom speedup vs 16x16: {speedup_wide:.2f}x with 16-bit weights, "
        f"{speedup_searched:.2f}x with searched weights"
    )
    target = optimizer.baseline_accuracy() * (1 - drop)
    assert weights.accuracy >= target
    assert speedup_searched > speedup_wide


def test_system_energy_breakdown(benchmark):
    context = make_context(bench_config("squeezenet"))
    optimizer = context.optimizer
    drop = 0.05
    stats = optimizer.stats()
    names = optimizer.layer_names
    params = {name: context.network[name].num_parameters() for name in names}
    out_input = optimizer.optimize("input", accuracy_drop=drop)
    out_mac = optimizer.optimize("mac", accuracy_drop=drop)
    uniform = smallest_uniform_bitwidth(
        context.network,
        context.test,
        optimizer.ordered_stats(),
        optimizer.baseline_accuracy(),
        drop,
    )
    wbits = {name: 8 for name in names}

    def run():
        return {
            label: system_energy(stats, alloc, wbits, params)
            for label, alloc in [
                ("uniform", uniform.allocation),
                ("opt_input", out_input.result.allocation),
                ("opt_mac", out_mac.result.allocation),
            ]
        }

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"allocation": label, **{k: v / 1e6 for k, v in b.as_dict().items()}}
        for label, b in breakdowns.items()
    ]
    print("\n=== Extension: system energy breakdown (uJ/image) ===")
    print(format_table(rows, float_format="{:.4f}"))
    # MAC optimization must win the MAC column; with activation traffic
    # priced in, input optimization must win the traffic column.
    assert breakdowns["opt_mac"].mac_pj <= breakdowns["opt_input"].mac_pj + 1e-6
    assert breakdowns["opt_input"].activation_pj <= (
        breakdowns["opt_mac"].activation_pj + 1e-6
    )


def test_second_order_cross_term(benchmark):
    """Eq. 2's linearization holds in the operating regime."""

    def run():
        return cross_term_sweep(
            fan_in=128, relative_errors=(0.01, 0.05, 0.1, 0.25, 0.5)
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "relative_error": r.input_bits_std,
            "predicted_std": r.predicted_std,
            "measured_std": r.measured_std,
            "cross_share_%": 100 * r.cross_term_share,
            "prediction_err_%": 100 * r.prediction_error,
        }
        for r in results
    ]
    print("\n=== Extension: second-order (cross) term contribution ===")
    print(format_table(rows, float_format="{:.3g}"))
    # In the regime real formats produce (<= 10% relative operand error)
    # the neglected term stays marginal — the paper's assumption.
    for r in results:
        if r.input_bits_std <= 0.1:
            assert r.cross_term_share < 0.05
            assert r.prediction_error < 0.05


def test_analytic_vs_searched_weight_bits(benchmark):
    """Analytic weight allocation (Eq. 5 extended to weights) vs the
    paper's Sec. V-E dynamic search: comparable bitwidths at a fraction
    of the accuracy evaluations."""
    import time

    from repro.config import ProfileSettings
    from repro.models import top1_accuracy
    from repro.weights import (
        QuantizedWeights,
        WeightErrorProfiler,
        allocate_weight_bits,
        search_weight_bitwidth,
    )

    context = make_context(bench_config("nin"))
    optimizer = context.optimizer
    drop = 0.05
    base = optimizer.baseline_accuracy()
    target = base * (1 - drop)

    def run():
        profiler = WeightErrorProfiler(
            context.network,
            context.test.images,
            ProfileSettings(num_images=16, num_delta_points=8),
        )
        report = profiler.profile()
        sigma = optimizer.sigma_for_drop(drop).sigma
        return allocate_weight_bits(
            context.network, report.profiles, sigma, budget_fraction=0.25
        )

    t0 = time.perf_counter()
    analytic = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic_seconds = time.perf_counter() - t0
    with QuantizedWeights(context.network, analytic.bits):
        analytic_acc = top1_accuracy(context.network, context.test)

    t0 = time.perf_counter()
    searched = search_weight_bitwidth(context.network, context.test, base, drop)
    search_seconds = time.perf_counter() - t0

    names = list(analytic.bits)
    mean_analytic = sum(analytic.bits.values()) / len(names)
    print("\n=== Extension: analytic vs searched weight bits (nin) ===")
    print(
        f"analytic: mean {mean_analytic:.1f} bits "
        f"(span {min(analytic.bits.values())}..{max(analytic.bits.values())}), "
        f"accuracy {analytic_acc:.3f}, {analytic_seconds:.1f}s, "
        f"0 accuracy evaluations"
    )
    print(
        f"searched: uniform {searched.bits} bits, accuracy "
        f"{searched.accuracy:.3f}, {search_seconds:.1f}s, "
        f"{searched.evaluations} accuracy evaluations"
    )
    assert analytic_acc >= target - 0.02
