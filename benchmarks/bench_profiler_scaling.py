"""Injection-campaign scaling benchmark (ISSUE 3 acceptance evidence).

Times the Sec. V-A lambda/theta profiling campaign on the same network
through four execution paths and writes ``BENCH_profiler.json``:

* ``legacy``      — the pre-engine serial loop (``use_engine=False``):
                    one ``forward_from`` replay per (layer, delta,
                    repeat, batch) trial.
* ``engine``      — the injection engine with ``trial_batch=1``
                    (replay plans + fast kernels, no multi-trial
                    stacking).
* ``vectorized``  — the engine with its default trial batching: R
                    noise draws stacked along the batch axis per
                    ``forward_from_many`` replay.
* ``jobs``        — ``vectorized`` plus a worker pool across layers
                    (``--jobs N``, thread backend).

All four paths share the per-(layer, batch, delta, repeat)
``SeedSequence`` RNG contract, so the fitted lambda/theta must be
bit-identical; the script asserts this and exits non-zero otherwise
(CI runs it at smoke sizes for exactly that regression check).

Timing is best-of-``--repeats`` wall clock: the hosts this runs on
share cores, and the minimum is the standard noise-robust estimator.
Note that on a single-core host the ``jobs`` row cannot beat
``vectorized`` — the speedup evidence there is carried by replay
planning + vectorization + fused kernels.

Run ``python benchmarks/bench_profiler_scaling.py --help`` for knobs;
``make bench-profiler`` runs the full AlexNet/NiN configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import ErrorProfiler  # noqa: E402
from repro.config import ParallelSettings, ProfileSettings  # noqa: E402
from repro.data import SyntheticImageNet  # noqa: E402
from repro.models import build_model, lsuv_calibrate  # noqa: E402
from repro.telemetry import build_manifest  # noqa: E402

SEED = 20190325
BACKEND = "thread"


def profile_once(
    network,
    images,
    settings: ProfileSettings,
    *,
    use_engine: bool,
    parallel: ParallelSettings,
) -> tuple:
    profiler = ErrorProfiler(
        network,
        images,
        settings,
        parallel=parallel,
        use_engine=use_engine,
    )
    start = time.perf_counter()
    report = profiler.profile()
    elapsed = time.perf_counter() - start
    fits = {p.name: (p.lam, p.theta) for p in report}
    return elapsed, fits, report


def bench_model(
    model: str,
    *,
    num_images: int,
    num_points: int,
    num_repeats: int,
    jobs: int,
    timing_repeats: int,
) -> Dict[str, object]:
    source = SyntheticImageNet(num_classes=8, seed=SEED)
    images = source.train_test(num_images, 8)[0].images
    network = build_model(model, num_classes=8, seed=SEED)
    lsuv_calibrate(network, images[: min(16, num_images)])
    settings = ProfileSettings(
        num_images=num_images,
        num_delta_points=num_points,
        num_repeats=num_repeats,
        seed=SEED,
    )
    paths = {
        "legacy": dict(use_engine=False, parallel=ParallelSettings()),
        "engine": dict(
            use_engine=True, parallel=ParallelSettings(trial_batch=1)
        ),
        "vectorized": dict(use_engine=True, parallel=ParallelSettings()),
        f"jobs{jobs}": dict(
            use_engine=True,
            parallel=ParallelSettings(jobs=jobs, backend=BACKEND),
        ),
    }
    times: Dict[str, float] = {}
    fits: Dict[str, Dict[str, tuple]] = {}
    for label, kwargs in paths.items():
        best = float("inf")
        for _ in range(timing_repeats):
            elapsed, fit, _ = profile_once(network, images, settings, **kwargs)
            best = min(best, elapsed)
        times[label] = best
        fits[label] = fit
        print(f"  {model}/{label:<12} best of {timing_repeats}: {best:.3f}s")

    mismatches: List[str] = []
    reference = fits["legacy"]
    for label, fit in fits.items():
        if fit != reference:
            mismatches.append(label)
    speedup = times["legacy"] / times[f"jobs{jobs}"]
    vector_speedup = times["legacy"] / times["vectorized"]
    print(
        f"  {model}: speedup legacy->vectorized {vector_speedup:.2f}x, "
        f"legacy->jobs{jobs} {speedup:.2f}x, "
        f"fits {'BIT-IDENTICAL' if not mismatches else 'MISMATCH'}"
    )
    return {
        "model": model,
        "seed": SEED,
        "num_images": num_images,
        "num_delta_points": num_points,
        "num_repeats": num_repeats,
        "jobs": jobs,
        "backend": BACKEND,
        "timing_repeats": timing_repeats,
        "seconds": times,
        "speedup_vectorized": vector_speedup,
        "speedup_jobs": speedup,
        "bit_identical": not mismatches,
        "mismatched_paths": mismatches,
        "fits": {
            name: {"lam": lam, "theta": theta}
            for name, (lam, theta) in reference.items()
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models",
        default="alexnet,nin",
        help="comma-separated zoo models to benchmark",
    )
    parser.add_argument("--images", type=int, default=24)
    parser.add_argument("--points", type=int, default=8)
    parser.add_argument("--num-repeats", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per path (best-of)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration: lenet only, small grid, 1 repeat",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_profiler.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.models = "lenet"
        args.images = 8
        args.points = 4
        args.repeats = 1
        args.jobs = min(args.jobs, 2)

    results = []
    for model in args.models.split(","):
        print(f"== {model} ==")
        results.append(
            bench_model(
                model.strip(),
                num_images=args.images,
                num_points=args.points,
                num_repeats=args.num_repeats,
                jobs=args.jobs,
                timing_repeats=args.repeats,
            )
        )
    manifest = build_manifest(
        config={
            "benchmark": "profiler_scaling",
            "models": args.models,
            "images": args.images,
            "points": args.points,
            "num_repeats": args.num_repeats,
            "jobs": args.jobs,
            "backend": BACKEND,
            "timing_repeats": args.repeats,
            "smoke": args.smoke,
        },
        seed=SEED,
    )
    payload = {
        "benchmark": "profiler_scaling",
        "smoke": args.smoke,
        "manifest": manifest.as_dict(),
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    failed = [r["model"] for r in results if not r["bit_identical"]]
    if failed:
        print(f"FAIL: non-identical fits for {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
